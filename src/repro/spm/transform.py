"""Phase II step 4 — rewriting the FORAY model to use the scratch pad.

Produces the "Transformed FORAY model code" box of the paper's Figure 3:
for every selected buffer, a buffer declaration, a fill loop at the right
nesting level (annotated as a DMA transfer), the rewritten access, and an
optional write-back loop. The designer then back-annotates this into the
legacy code (Phase III, manual by design in the paper).
"""

from __future__ import annotations

from repro.spm.allocator import Allocation

_INDENT = "    "


def transform_model(allocation: Allocation) -> str:
    """Render the SPM-transformed FORAY model as C-like text."""
    lines: list[str] = [
        f"/* SPM capacity: {allocation.capacity_bytes} bytes; "
        f"{allocation.buffer_count} buffers selected; "
        f"estimated saving {allocation.total_benefit_nj:.0f} nJ */",
        "",
    ]
    for candidate in allocation.selected:
        reference = candidate.reference
        level = candidate.level
        words = level.footprint_words
        lines.append(
            f"char {candidate.name}[{candidate.size_bytes}];  "
            f"/* SPM buffer for {reference.array_name} */"
        )
    if allocation.selected:
        lines.append("")

    for candidate in allocation.selected:
        reference = candidate.reference
        level = candidate.level
        loops = reference.effective_loops
        outer_loops = loops[: len(loops) - level.level]
        inner_loops = loops[len(loops) - level.level :]

        depth = 0
        for loop in outer_loops:
            lines.append(
                _INDENT * depth
                + f"for (int {loop.name} = 0; {loop.name} < {loop.max_trip}; "
                  f"{loop.name}++) {{"
            )
            depth += 1
        lines.append(
            _INDENT * depth
            + f"dma_copy({candidate.name}, &{reference.array_name}"
              f"[{_base_index(reference, outer_loops)}], "
              f"{candidate.size_bytes});  /* fill */"
        )
        for loop in inner_loops:
            lines.append(
                _INDENT * depth
                + f"for (int {loop.name} = 0; {loop.name} < {loop.max_trip}; "
                  f"{loop.name}++) {{"
            )
            depth += 1
        lines.append(
            _INDENT * depth
            + f"{candidate.name}[{_buffer_index(reference, inner_loops)}];  "
              f"/* was {reference.array_name}[{reference.index_text()}] */"
        )
        for _ in inner_loops:
            depth -= 1
            lines.append(_INDENT * depth + "}")
        if reference.writes:
            lines.append(
                _INDENT * depth
                + f"dma_copy(&{reference.array_name}"
                  f"[{_base_index(reference, outer_loops)}], {candidate.name}, "
                  f"{candidate.size_bytes});  /* write back */"
            )
        for _ in outer_loops:
            depth -= 1
            lines.append(_INDENT * depth + "}")
        lines.append("")

    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + ("\n" if lines else "")


def _base_index(reference, outer_loops) -> str:
    """Index of the first element covered by the buffer at this fill."""
    expr = reference.expression
    coefficients = expr.used_coefficients()
    names_inner_first = [loop.name for loop in reversed(reference.effective_loops)]
    outer_names = {loop.name for loop in outer_loops}
    parts = [str(expr.const)]
    for coefficient, name in zip(coefficients, names_inner_first):
        if name in outer_names and coefficient:
            parts.append(f"{coefficient}*{name}")
    return "+".join(parts)


def _buffer_index(reference, inner_loops) -> str:
    """Index into the SPM buffer (inner iterators only, rebased to 0)."""
    expr = reference.expression
    coefficients = expr.used_coefficients()
    names_inner_first = [loop.name for loop in reversed(reference.effective_loops)]
    inner_names = {loop.name for loop in inner_loops}
    parts = []
    for coefficient, name in zip(coefficients, names_inner_first):
        if name in inner_names and coefficient:
            parts.append(f"{coefficient}*{name}")
    return "+".join(parts) if parts else "0"
