"""Reuse-graph IR — the structured candidate space of Phase II.

Buffer candidates used to be a flat list (:func:`enumerate_candidates`)
whose only structure — "at most one candidate per reference" — lived
implicitly inside the allocator. The :class:`ReuseGraph` makes the design
space explicit:

* **nodes** — one per viable buffering decision: a reuse level of one (or
  several) references, carrying the buffer footprint, the fill and
  write-back transfer volumes, and the net energy benefit;
* **containment edges** — between reuse levels of the same reference
  (the inner window is a subset of the outer one), mutually exclusive by
  construction;
* **sharing edges** — between nodes whose references touch the same
  array (overlapping address intervals). References with *identical*
  access windows collapse into one shared node whose fill traffic is paid
  once; distinct windows of the same array stay separate nodes but remain
  mutually exclusive (one buffering decision per array).

Allocators consume :meth:`ReuseGraph.exclusive_groups`: a partition of the
nodes such that at most one node per group may be selected, which turns
buffer selection into a multiple-choice knapsack over the groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.foray.model import ForayModel, ForayReference
from repro.spm.candidates import (
    BufferCandidate,
    served_saving,
    transfer_cost,
)
from repro.spm.energy import EnergyModel
from repro.spm.reuse import ReuseLevel, reuse_levels


def reference_interval(reference: ForayReference) -> tuple[int, int]:
    """Half-open byte-address interval ``[lo, hi)`` touched by a reference.

    Derived from the affine expression over the full iteration space; two
    references whose intervals overlap access the same underlying array.
    """
    coefficients = reference.expression.used_coefficients()
    trips = tuple(
        max(1, loop.max_trip) for loop in reversed(reference.effective_loops)
    )
    lo = hi = reference.expression.const
    for coefficient, trip in zip(coefficients, trips):
        delta = coefficient * (trip - 1)
        if delta < 0:
            lo += delta
        else:
            hi += delta
    return lo, hi + reference.access_size


def _window_signature(candidate: BufferCandidate) -> tuple:
    """Two candidates with equal signatures buffer the *same* window on
    the same fill schedule — one physical buffer can serve both."""
    reference = candidate.reference
    trips = tuple(
        loop.max_trip for loop in reversed(reference.effective_loops)
    )
    return (
        reference.expression.const,
        reference.expression.used_coefficients(),
        trips,
        candidate.level.level,
        candidate.level.fills,
        reference.access_size,
    )


def _merged_benefit(
    members: list[BufferCandidate], energy: EnergyModel
) -> float:
    """Benefit of serving every member from one shared buffer: the sum of
    the members' served savings minus a *single* transfer cost (for one
    member this equals :func:`candidate_benefit`)."""
    served = sum(
        served_saving(member.reference, energy) for member in members
    )
    writes = any(member.reference.writes for member in members)
    return served - transfer_cost(members[0].level, energy, writes)


@dataclass(frozen=True)
class ReuseNode:
    """One buffering decision: a reuse level of one or more references."""

    node_id: int
    #: Exclusivity group (one selected node per array, see module doc).
    group_id: int
    #: Representative candidate; ``benefit_nj`` reflects all members.
    candidate: BufferCandidate
    #: The per-reference candidates this node serves (>1 = shared buffer).
    members: tuple[BufferCandidate, ...]
    #: Main-memory words copied into the buffer over the whole run.
    fill_words: int
    #: Words copied back to main memory (0 for read-only members).
    writeback_words: int

    @property
    def size_bytes(self) -> int:
        return self.candidate.size_bytes

    @property
    def benefit_nj(self) -> float:
        return self.candidate.benefit_nj

    @property
    def level(self) -> ReuseLevel:
        return self.candidate.level

    @property
    def references(self) -> tuple[ForayReference, ...]:
        return tuple(member.reference for member in self.members)

    @property
    def is_shared(self) -> bool:
        return len(self.members) > 1

    def describe(self) -> str:
        shared = f", shared x{len(self.members)}" if self.is_shared else ""
        return (
            f"node {self.node_id} (group {self.group_id}): "
            f"{self.size_bytes} B, fill {self.fill_words} w, "
            f"wb {self.writeback_words} w, "
            f"benefit {self.benefit_nj:.0f} nJ{shared}"
        )


@dataclass(frozen=True)
class ReuseEdge:
    """A structural relation between two nodes (see module docstring)."""

    kind: str  # "containment" | "sharing"
    src: int
    dst: int


class ReuseGraph:
    """The reuse-graph IR over one FORAY model (see module docstring)."""

    def __init__(
        self,
        nodes: tuple[ReuseNode, ...],
        edges: tuple[ReuseEdge, ...],
        energy: EnergyModel,
    ):
        self.nodes = nodes
        self.edges = edges
        self.energy = energy

    @classmethod
    def from_model(
        cls, model: ForayModel, energy: EnergyModel | None = None
    ) -> "ReuseGraph":
        energy = energy or EnergyModel()
        references = [ref for ref in model.references if ref.effective_loops]
        group_of = _group_by_array(references)

        # Bucket every reuse level by (array, window signature): identical
        # windows of the same array collapse into one shared node.
        buckets: dict[tuple, list[BufferCandidate]] = {}
        order: list[tuple] = []
        for reference in references:
            for level in reuse_levels(reference):
                size = level.footprint_words * reference.access_size
                candidate = BufferCandidate(reference, level, size, 0.0)
                key = (group_of[id(reference)], _window_signature(candidate))
                if key not in buckets:
                    buckets[key] = []
                    order.append(key)
                buckets[key].append(candidate)

        nodes: list[ReuseNode] = []
        for key in order:
            members = buckets[key]
            benefit = _merged_benefit(members, energy)
            if benefit <= 0:
                continue
            level = members[0].level
            representative = BufferCandidate(
                members[0].reference, level, members[0].size_bytes, benefit
            )
            fill_words = level.fills * level.footprint_words
            writes = any(member.reference.writes for member in members)
            nodes.append(
                ReuseNode(
                    node_id=len(nodes),
                    group_id=key[0],
                    candidate=representative,
                    members=tuple(members),
                    fill_words=fill_words,
                    writeback_words=fill_words if writes else 0,
                )
            )

        return cls(tuple(nodes), _build_edges(nodes), energy)

    # -- structure ---------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def exclusive_groups(self) -> tuple[tuple[ReuseNode, ...], ...]:
        """Partition of the nodes into mutual-exclusion groups (one
        buffering decision per array)."""
        groups: dict[int, list[ReuseNode]] = {}
        for node in self.nodes:
            groups.setdefault(node.group_id, []).append(node)
        return tuple(tuple(group) for group in groups.values())

    def edges_of_kind(self, kind: str) -> tuple[ReuseEdge, ...]:
        return tuple(edge for edge in self.edges if edge.kind == kind)

    def describe(self) -> str:
        lines = [
            f"reuse graph: {self.node_count} nodes, {self.edge_count} edges, "
            f"{len(self.exclusive_groups())} exclusive groups"
        ]
        lines.extend(node.describe() for node in self.nodes)
        return "\n".join(lines)


def _group_by_array(references: list[ForayReference]) -> dict[int, int]:
    """Assign each reference an array-group id by interval overlap.

    References are sorted by interval start; overlapping (transitively
    chained) intervals share a group — they alias the same storage.
    """
    ordered = sorted(
        references, key=lambda ref: (*reference_interval(ref), ref.pc)
    )
    group_of: dict[int, int] = {}
    group_id = -1
    frontier = None  # highest address seen in the current group
    for reference in ordered:
        lo, hi = reference_interval(reference)
        if frontier is None or lo >= frontier:
            group_id += 1
            frontier = hi
        else:
            frontier = max(frontier, hi)
        group_of[id(reference)] = group_id
    return group_of


def _build_edges(nodes: list[ReuseNode]) -> tuple[ReuseEdge, ...]:
    edges: list[ReuseEdge] = []
    seen: set[tuple[str, int, int]] = set()

    def add(kind: str, src: int, dst: int) -> None:
        key = (kind, src, dst)
        if src != dst and key not in seen:
            seen.add(key)
            edges.append(ReuseEdge(kind, src, dst))

    # Containment: successive reuse levels of the same reference.
    by_reference: dict[int, list[ReuseNode]] = {}
    for node in nodes:
        for member in node.members:
            by_reference.setdefault(id(member.reference), []).append(node)
    for chain in by_reference.values():
        chain = sorted(chain, key=lambda node: node.level.level)
        for inner, outer in zip(chain, chain[1:]):
            add("containment", inner.node_id, outer.node_id)

    # Sharing: distinct windows of the same array.
    by_group: dict[int, list[ReuseNode]] = {}
    for node in nodes:
        by_group.setdefault(node.group_id, []).append(node)
    for group in by_group.values():
        for i, left in enumerate(group):
            left_refs = {id(ref) for ref in left.references}
            for right in group[i + 1 :]:
                if left_refs.isdisjoint(id(ref) for ref in right.references):
                    add("sharing", left.node_id, right.node_id)
    return tuple(edges)
