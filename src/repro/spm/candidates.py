"""Scratch-pad buffer candidates (paper Figure 3, Phase II step 2).

For every FORAY reference and every split point of its loop nest we build a
:class:`BufferCandidate`: a buffer that holds the data touched by the inner
subnest, refilled each time the subnest is entered. The candidate's energy
benefit compares serving all accesses from the SPM (plus the fill and
write-back transfer traffic) against serving them from main memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.foray.model import ForayModel, ForayReference
from repro.spm.energy import EnergyModel
from repro.spm.reuse import ReuseLevel, reuse_levels


@dataclass(frozen=True)
class BufferCandidate:
    reference: ForayReference
    level: ReuseLevel
    size_bytes: int
    benefit_nj: float

    @property
    def name(self) -> str:
        return f"buf_{self.reference.array_name}_l{self.level.level}"

    def describe(self) -> str:
        return (
            f"{self.name}: {self.size_bytes} B, reuse x{self.level.reuse_factor:.1f}, "
            f"benefit {self.benefit_nj:.0f} nJ"
        )


def served_saving(reference: ForayReference, energy: EnergyModel) -> float:
    """Energy saved by serving a reference's accesses from the SPM
    instead of main memory (transfer traffic not included)."""
    return (energy.main_energy(reference.reads, reference.writes)
            - energy.spm_energy(reference.reads, reference.writes))


def transfer_cost(
    level: ReuseLevel, energy: EnergyModel, writes: bool
) -> float:
    """Energy of the fill (and, for written buffers, write-back) traffic
    of one buffer at ``level`` over the whole run."""
    transfer_words = level.fills * level.footprint_words
    cost = energy.fill_energy(transfer_words)
    if writes:
        cost += energy.writeback_energy(transfer_words)
    return cost


def candidate_benefit(
    reference: ForayReference, level: ReuseLevel, energy: EnergyModel
) -> float:
    """Energy saved by buffering ``reference`` at ``level`` (may be < 0)."""
    return served_saving(reference, energy) - transfer_cost(
        level, energy, bool(reference.writes))


def candidates_for_reference(
    reference: ForayReference, energy: EnergyModel
) -> list[BufferCandidate]:
    """All profitable buffer candidates of one reference."""
    out: list[BufferCandidate] = []
    for level in reuse_levels(reference):
        benefit = candidate_benefit(reference, level, energy)
        if benefit <= 0:
            continue
        size_bytes = level.footprint_words * reference.access_size
        out.append(BufferCandidate(reference, level, size_bytes, benefit))
    return out


def enumerate_candidates(
    model: ForayModel, energy: EnergyModel | None = None
) -> list[BufferCandidate]:
    """Profitable buffer candidates for every reference of the model."""
    energy = energy or EnergyModel()
    out: list[BufferCandidate] = []
    for reference in model.references:
        out.extend(candidates_for_reference(reference, energy))
    return out
