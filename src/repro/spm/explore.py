"""Design-space exploration over SPM capacities (Phase II step 3).

Sweeps a set of scratch-pad sizes, allocating buffers at each size, and
reports the achievable energy saving — including the comparison the paper
motivates: how much of the saving is only reachable *because* FORAY-GEN
exposed non-source-FORAY references to the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.foray.model import ForayModel
from repro.spm.allocator import Allocation, allocate
from repro.spm.candidates import enumerate_candidates
from repro.spm.energy import EnergyModel

#: Default sweep: typical embedded SPM capacities.
DEFAULT_CAPACITIES = (256, 512, 1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True)
class ExplorationPoint:
    capacity_bytes: int
    buffer_count: int
    used_bytes: int
    benefit_nj: float
    baseline_nj: float

    @property
    def saving_fraction(self) -> float:
        if self.baseline_nj <= 0:
            return 0.0
        return self.benefit_nj / self.baseline_nj


def model_baseline_energy(model: ForayModel, energy: EnergyModel) -> float:
    """Energy of all model references served from main memory."""
    return sum(
        energy.main_energy(ref.reads, ref.writes) for ref in model.references
    )


def explore(
    model: ForayModel,
    capacities: tuple[int, ...] = DEFAULT_CAPACITIES,
    energy: EnergyModel | None = None,
) -> list[ExplorationPoint]:
    """Allocate buffers at each capacity and report the energy savings."""
    energy = energy or EnergyModel()
    candidates = enumerate_candidates(model, energy)
    baseline = model_baseline_energy(model, energy)
    points: list[ExplorationPoint] = []
    for capacity in capacities:
        allocation: Allocation = allocate(candidates, capacity)
        points.append(
            ExplorationPoint(
                capacity_bytes=capacity,
                buffer_count=allocation.buffer_count,
                used_bytes=allocation.used_bytes,
                benefit_nj=allocation.total_benefit_nj,
                baseline_nj=baseline,
            )
        )
    return points


def best_allocation(
    model: ForayModel,
    capacity_bytes: int,
    energy: EnergyModel | None = None,
) -> Allocation:
    """Single-capacity convenience wrapper."""
    energy = energy or EnergyModel()
    return allocate(enumerate_candidates(model, energy), capacity_bytes)
