"""Design-space exploration over SPM capacities (Phase II step 3).

Sweeps a ladder of scratch-pad sizes, allocating buffers over the
reuse-graph IR at each size, and reports the achievable energy saving —
the capacity/energy trade-off that motivates scratch-pads in the first
place. :func:`pareto_frontier` reduces a sweep to its Pareto-optimal
points (no smaller capacity achieves the same saving), and
:func:`sweep_suite` fans the sweep out across whole workload suites with
the pipeline's multiprocess ``run_suite(jobs=N)`` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.foray.model import ForayModel
from repro.spm.allocator import Allocation, AllocatorPolicy, allocate_graph
from repro.spm.energy import EnergyModel
from repro.spm.graph import ReuseGraph

#: Default sweep: typical embedded SPM capacities.
DEFAULT_CAPACITIES = (256, 512, 1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True)
class ExplorationPoint:
    capacity_bytes: int
    buffer_count: int
    used_bytes: int
    benefit_nj: float
    baseline_nj: float
    policy: str = AllocatorPolicy.DP.value

    @property
    def saving_fraction(self) -> float:
        if self.baseline_nj <= 0:
            return 0.0
        return self.benefit_nj / self.baseline_nj


def model_baseline_energy(model: ForayModel, energy: EnergyModel) -> float:
    """Energy of all model references served from main memory."""
    return sum(
        energy.main_energy(ref.reads, ref.writes) for ref in model.references
    )


def explore(
    model: ForayModel,
    capacities: tuple[int, ...] = DEFAULT_CAPACITIES,
    energy: EnergyModel | None = None,
    policy: AllocatorPolicy | str = AllocatorPolicy.DP,
    graph: ReuseGraph | None = None,
) -> list[ExplorationPoint]:
    """Allocate buffers at each capacity and report the energy savings.

    The reuse graph is built once and reused across the whole ladder;
    pass ``graph`` to share one across several sweeps.
    """
    energy = energy or EnergyModel()
    policy = AllocatorPolicy(policy)
    if graph is None:
        graph = ReuseGraph.from_model(model, energy)
    baseline = model_baseline_energy(model, energy)
    points: list[ExplorationPoint] = []
    for capacity in capacities:
        allocation: Allocation = allocate_graph(graph, capacity, policy)
        points.append(
            ExplorationPoint(
                capacity_bytes=capacity,
                buffer_count=allocation.buffer_count,
                used_bytes=allocation.used_bytes,
                benefit_nj=allocation.total_benefit_nj,
                baseline_nj=baseline,
                policy=policy.value,
            )
        )
    return points


def pareto_frontier(points: list[ExplorationPoint]) -> list[ExplorationPoint]:
    """The Pareto-optimal subset of a sweep: keep a point only if no
    point of smaller-or-equal capacity achieves at least its saving
    (a zero-saving point is always dominated by the empty SPM)."""
    ordered = sorted(
        points, key=lambda point: (point.capacity_bytes, -point.benefit_nj)
    )
    frontier: list[ExplorationPoint] = []
    best = 0.0
    for point in ordered:
        if point.benefit_nj > best + 1e-9:
            frontier.append(point)
            best = point.benefit_nj
    return frontier


def sweep_suite(
    names: tuple[str, ...] | None = None,
    capacities: tuple[int, ...] = DEFAULT_CAPACITIES,
    policy: AllocatorPolicy | str = AllocatorPolicy.DP,
    energy: EnergyModel | None = None,
    jobs: int | None = None,
    config=None,
) -> dict[str, tuple[ExplorationPoint, ...]]:
    """Capacity sweep over a workload suite.

    Workload profiling (the expensive step) is fanned out over ``jobs``
    worker processes through the pipeline's ``run_suite`` machinery
    (``jobs=None`` defers to ``config.jobs``; an explicit ``jobs=1``
    forces a serial run); per-workload sweeps are memoized in the
    pipeline's exploration artifact cache (``energy=None`` uses
    ``config.spm.energy``). With ``config.cache_dir`` set, both the
    profiles and the sweeps persist in the disk artifact store, so
    re-running a sweep — from this or any other process — only computes
    the capacities/policies/workloads not already covered: sweeps are
    incremental across invocations.
    """
    from repro import pipeline  # local import: pipeline imports this module

    merged = config or pipeline.PipelineConfig()
    reports = pipeline.run_suite(names, jobs=jobs, config=merged)
    return {
        report.name: pipeline.cached_exploration(
            report.extraction.compiled.source, merged, report.model,
            capacities, policy, energy,
        )
        for report in reports
    }


def best_allocation(
    model: ForayModel,
    capacity_bytes: int,
    energy: EnergyModel | None = None,
    policy: AllocatorPolicy | str = AllocatorPolicy.DP,
) -> Allocation:
    """Single-capacity convenience wrapper over the reuse graph."""
    energy = energy or EnergyModel()
    graph = ReuseGraph.from_model(model, energy)
    return allocate_graph(graph, capacity_bytes, policy)
