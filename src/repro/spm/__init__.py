"""Phase II substrate: SPM reuse analysis, buffer allocation, energy model.

Implements the "Traditional SPM analysis and code transformation" box of
the paper's Figure 3 (the design flow of reference [5]) so the value of
FORAY-GEN — more references visible to this phase — can be measured end to
end. The candidate space is organised as a reuse-graph IR
(:mod:`repro.spm.graph`); allocators (exact DP and two greedy rankings)
and the capacity-sweep explorer operate over it.
"""

from repro.spm.allocator import (
    ALLOCATOR_POLICIES,
    Allocation,
    AllocatorPolicy,
    allocate,
    allocate_graph,
)
from repro.spm.candidates import (
    BufferCandidate,
    candidate_benefit,
    candidates_for_reference,
    enumerate_candidates,
    served_saving,
    transfer_cost,
)
from repro.spm.energy import EnergyModel
from repro.spm.explore import (
    DEFAULT_CAPACITIES,
    ExplorationPoint,
    best_allocation,
    explore,
    model_baseline_energy,
    pareto_frontier,
    sweep_suite,
)
from repro.spm.graph import (
    ReuseEdge,
    ReuseGraph,
    ReuseNode,
    reference_interval,
)
from repro.spm.reuse import ReuseLevel, inner_footprint, reuse_levels
from repro.spm.transform import (
    ReplayProgram,
    emit_replay_source,
    emit_transformed_source,
    transform_model,
)

__all__ = [
    "ALLOCATOR_POLICIES",
    "Allocation",
    "AllocatorPolicy",
    "allocate",
    "allocate_graph",
    "BufferCandidate",
    "candidate_benefit",
    "candidates_for_reference",
    "enumerate_candidates",
    "served_saving",
    "transfer_cost",
    "EnergyModel",
    "DEFAULT_CAPACITIES",
    "ExplorationPoint",
    "best_allocation",
    "explore",
    "model_baseline_energy",
    "pareto_frontier",
    "sweep_suite",
    "ReuseEdge",
    "ReuseGraph",
    "ReuseNode",
    "reference_interval",
    "ReuseLevel",
    "inner_footprint",
    "reuse_levels",
    "ReplayProgram",
    "emit_replay_source",
    "emit_transformed_source",
    "transform_model",
]
