"""Phase II substrate: SPM reuse analysis, buffer allocation, energy model.

Implements the "Traditional SPM analysis and code transformation" box of
the paper's Figure 3 (the design flow of reference [5]) so the value of
FORAY-GEN — more references visible to this phase — can be measured end to
end.
"""

from repro.spm.allocator import Allocation, allocate
from repro.spm.candidates import (
    BufferCandidate,
    candidate_benefit,
    candidates_for_reference,
    enumerate_candidates,
)
from repro.spm.energy import EnergyModel
from repro.spm.explore import (
    DEFAULT_CAPACITIES,
    ExplorationPoint,
    best_allocation,
    explore,
    model_baseline_energy,
)
from repro.spm.reuse import ReuseLevel, inner_footprint, reuse_levels
from repro.spm.transform import transform_model

__all__ = [
    "Allocation",
    "allocate",
    "BufferCandidate",
    "candidate_benefit",
    "candidates_for_reference",
    "enumerate_candidates",
    "EnergyModel",
    "DEFAULT_CAPACITIES",
    "ExplorationPoint",
    "best_allocation",
    "explore",
    "model_baseline_energy",
    "ReuseLevel",
    "inner_footprint",
    "reuse_levels",
    "transform_model",
]
