"""Per-access energy model for the SPM phase and the cache co-simulation.

Default numbers follow the ratios reported by Banakar et al. ("Scratchpad
Memory: A Design Alternative for Cache On-chip Memory in Embedded
Systems", CODES 2002 — reference [1] of the paper): an on-chip scratch pad
access costs roughly an order of magnitude less energy than an off-chip
main-memory access, and a cache access costs ~1.4x the equivalent scratch
pad access (the tag array and comparators the SPM does not have — the
core of Banakar's argument). Absolute values are placeholders in
nanojoules; only the ratios matter for the benchmark shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields


@dataclass(frozen=True)
class EnergyModel:
    """Energy per access, in nanojoules.

    Every field must be a finite, non-negative number; malformed
    overrides (negative costs, NaN from a bad CLI parse) are rejected at
    construction instead of silently producing nonsense energy tables.
    """

    spm_read_nj: float = 0.19
    spm_write_nj: float = 0.21
    cache_read_nj: float = 0.27
    cache_write_nj: float = 0.30
    main_read_nj: float = 3.57
    main_write_nj: float = 4.19

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"energy model: {field.name} must be a number, "
                    f"got {value!r}"
                )
            if not math.isfinite(value) or value < 0:
                raise ValueError(
                    f"energy model: {field.name} must be finite and "
                    f">= 0, got {value!r}"
                )

    def main_energy(self, reads: int, writes: int) -> float:
        """Energy of serving all accesses from main memory."""
        return reads * self.main_read_nj + writes * self.main_write_nj

    def spm_energy(self, reads: int, writes: int) -> float:
        """Energy of serving all accesses from the scratch pad."""
        return reads * self.spm_read_nj + writes * self.spm_write_nj

    def cache_energy(self, reads: int, writes: int) -> float:
        """Energy of ``reads``/``writes`` cache lookups (tag + data)."""
        return reads * self.cache_read_nj + writes * self.cache_write_nj

    def fill_energy(self, words: int) -> float:
        """Copying ``words`` from main memory into the SPM."""
        return words * (self.main_read_nj + self.spm_write_nj)

    def writeback_energy(self, words: int) -> float:
        """Copying ``words`` from the SPM back to main memory."""
        return words * (self.spm_read_nj + self.main_write_nj)
