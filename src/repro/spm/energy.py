"""Per-access energy model for the SPM phase.

Default numbers follow the ratios reported by Banakar et al. ("Scratchpad
Memory: A Design Alternative for Cache On-chip Memory in Embedded
Systems", CODES 2002 — reference [1] of the paper): an on-chip scratch pad
access costs roughly an order of magnitude less energy than an off-chip
main-memory access. Absolute values are placeholders in nanojoules; only
the ratios matter for the benchmark shapes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Energy per access, in nanojoules."""

    spm_read_nj: float = 0.19
    spm_write_nj: float = 0.21
    main_read_nj: float = 3.57
    main_write_nj: float = 4.19

    def main_energy(self, reads: int, writes: int) -> float:
        """Energy of serving all accesses from main memory."""
        return reads * self.main_read_nj + writes * self.main_write_nj

    def spm_energy(self, reads: int, writes: int) -> float:
        """Energy of serving all accesses from the scratch pad."""
        return reads * self.spm_read_nj + writes * self.spm_write_nj

    def fill_energy(self, words: int) -> float:
        """Copying ``words`` from main memory into the SPM."""
        return words * (self.main_read_nj + self.spm_write_nj)

    def writeback_energy(self, words: int) -> float:
        """Copying ``words`` from the SPM back to main memory."""
        return words * (self.spm_read_nj + self.main_write_nj)
