"""Hierarchy comparison report: pure cache vs SPM + cache.

One :class:`HierarchyReport` is one cell of the evaluation matrix — a
(workload, input scenario, cache configuration) triple simulated twice
from a single engine run (two sinks share the trace stream):

* **pure cache** — every access goes through the cache hierarchy (the
  hardware baseline the paper's SPM displaces);
* **SPM + cache** — accesses inside the SPM allocation's address
  intervals are served by the scratch pad; everything else still goes
  through the same cache configuration. The SPM buffers' DMA fill and
  write-back traffic is charged from the allocation's transfer volumes
  (main-memory words moved once per fill, exactly as Phase II accounts
  them).

``baseline_main_nj`` — all accesses served from main memory with no
hierarchy at all — is included as the common denominator the paper's
energy-saving fractions are quoted against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

from repro.cachesim.model import (
    CacheConfig,
    CacheSimResult,
    hierarchy_energy,
)
from repro.spm.energy import EnergyModel


@dataclass(frozen=True)
class HierarchyReport:
    """Pure-cache vs SPM+cache comparison for one matrix cell."""

    workload: str
    #: Input-scenario name ("-" for ad-hoc sources without a matrix).
    scenario: str
    cache_config: CacheConfig
    #: SPM capacity the hybrid allocation was selected under.
    spm_bytes: int
    #: Allocator policy behind the hybrid allocation.
    policy: str
    #: SPM bytes the allocation actually occupies.
    spm_buffer_bytes: int
    #: Every access served from main memory (no cache, no SPM).
    baseline_main_nj: float
    cache: CacheSimResult
    hybrid: CacheSimResult
    #: Energy of the pure-cache run.
    cache_nj: float
    #: Cache-side energy of the hybrid run (non-SPM accesses).
    hybrid_cache_nj: float
    #: SPM access energy of the hybrid run.
    spm_access_nj: float
    #: DMA fill + write-back energy of the SPM buffers.
    spm_transfer_nj: float

    @property
    def hybrid_nj(self) -> float:
        """Total energy of the SPM+cache configuration."""
        return self.hybrid_cache_nj + self.spm_access_nj + self.spm_transfer_nj

    @property
    def spm_win(self) -> bool:
        """Does adding the SPM beat the pure cache outright?"""
        return self.hybrid_nj < self.cache_nj

    @property
    def cache_saving_fraction(self) -> float:
        """Pure cache's energy saving over the all-main baseline."""
        if self.baseline_main_nj <= 0:
            return 0.0
        return 1.0 - self.cache_nj / self.baseline_main_nj

    @property
    def hybrid_saving_fraction(self) -> float:
        """SPM+cache's energy saving over the pure cache."""
        if self.cache_nj <= 0:
            return 0.0
        return 1.0 - self.hybrid_nj / self.cache_nj

    def fingerprint(self) -> str:
        """Stable content hash (disk-vs-recompute identity checks, like
        :meth:`ValidationReport.fingerprint`)."""
        digest = hashlib.sha256()
        digest.update(
            f"{self.workload}:{self.scenario}:{self.cache_config.spec()}:"
            f"{self.spm_bytes}:{self.policy}:{self.spm_buffer_bytes};".encode()
        )
        for result in (self.cache, self.hybrid):
            digest.update(
                f"{result.reads}:{result.writes}:{result.spm_reads}:"
                f"{result.spm_writes}:{result.main_read_words}:"
                f"{result.main_write_words};".encode()
            )
            for stats in result.levels:
                values = ":".join(
                    str(getattr(stats, field.name)) for field in fields(stats)
                )
                digest.update(f"{values};".encode())
        return digest.hexdigest()


def build_hierarchy_report(
    workload: str,
    scenario: str,
    cache_config: CacheConfig,
    allocation,
    pure: CacheSimResult,
    hybrid: CacheSimResult,
    energy: EnergyModel,
) -> HierarchyReport:
    """Assemble the comparison from two finished sink results.

    ``allocation`` is the :class:`~repro.spm.allocator.Allocation` whose
    address intervals the hybrid sink bypassed; its graph nodes supply
    the DMA fill/write-back volumes. Flat legacy allocations (no graph
    nodes) charge the same volumes from their selected candidates'
    reuse levels — whatever the sink bypassed must pay its transfers,
    or the hybrid's SPM contents would materialize for free.
    """
    if allocation.nodes:
        fill_words = sum(node.fill_words for node in allocation.nodes)
        writeback_words = sum(
            node.writeback_words for node in allocation.nodes
        )
    else:
        fill_words = writeback_words = 0
        for candidate in allocation.selected:
            words = candidate.level.fills * candidate.level.footprint_words
            fill_words += words
            if candidate.reference.writes:
                writeback_words += words
    return HierarchyReport(
        workload=workload,
        scenario=scenario,
        cache_config=cache_config,
        spm_bytes=allocation.capacity_bytes,
        policy=allocation.policy,
        spm_buffer_bytes=allocation.used_bytes,
        baseline_main_nj=energy.main_energy(pure.reads, pure.writes),
        cache=pure,
        hybrid=hybrid,
        cache_nj=hierarchy_energy(pure, energy),
        hybrid_cache_nj=hierarchy_energy(hybrid, energy),
        spm_access_nj=energy.spm_energy(hybrid.spm_reads, hybrid.spm_writes),
        spm_transfer_nj=(energy.fill_energy(fill_words)
                        + energy.writeback_energy(writeback_words)),
    )
