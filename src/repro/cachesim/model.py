"""Set-associative cache model — the hardware alternative the SPM displaces.

The paper's energy argument (via Banakar et al., CODES 2002 — its
reference [1]) is that a software-managed scratch pad beats a hardware
cache of the same capacity because the cache pays tag/lookup energy on
every access and moves whole lines on every miss. This module supplies
the cache side of that comparison: a configurable set-associative cache
(:class:`CacheConfig`) with LRU replacement, write-back/write-allocate or
write-through/no-write-allocate policies, and an optional second level —
simulated *online* against the engines' batched trace protocol (see
:mod:`repro.cachesim.sink`), never against a materialized trace.

Accounting model (what the counters mean and what energy is charged):

* Lookups are charged at L1 only — one cache read/write per CPU access
  presented to a cache line (an access spanning two lines costs two
  lookups).
* All inter-level data movement is counted in 4-byte words and charged
  at both endpoints: a fill of one line reads ``line_words`` from the
  level below (cache read, or main-memory read at the last level) and
  writes them into the filling level (cache write); a write-back is the
  mirror image. Write-through writes forward the written words to the
  level below.
* The hierarchy is non-inclusive: an L1 line may or may not be present
  in L2; an L1 write-back that misses L2 write-allocates there.
* :meth:`CacheHierarchy.flush` (called once by the sink's ``finish``)
  writes every remaining dirty line back down to main memory, so
  write-back and write-through configurations are compared on equal
  terms — all dirty data eventually reaches main memory.

``main_read_words`` / ``main_write_words`` on :class:`CacheSimResult`
are the main-memory traffic of the whole run; per-level event counts
live in :class:`CacheLevelStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spm.energy import EnergyModel

#: Word size used for all traffic accounting (the SPM allocator granule).
WORD_BYTES = 4


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level (plus an optional L2).

    The default — 64 sets x 2 ways x 32-byte lines = 4 KiB — matches the
    default SPM capacity (``SpmConfig.spm_bytes``), so the out-of-the-box
    comparison is cache-vs-SPM at equal capacity.

    ``write_back=True`` pairs write-back with write-allocate;
    ``write_back=False`` pairs write-through with no-write-allocate (the
    two classic policy bundles).
    """

    line_bytes: int = 32
    sets: int = 64
    ways: int = 2
    write_back: bool = True
    l2: "CacheConfig | None" = None

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_bytes) or self.line_bytes < WORD_BYTES:
            raise ValueError(
                f"line_bytes must be a power of two >= {WORD_BYTES}, "
                f"got {self.line_bytes}"
            )
        if self.sets < 1:
            raise ValueError(f"sets must be >= 1, got {self.sets}")
        if self.ways < 1:
            raise ValueError(f"ways must be >= 1, got {self.ways}")
        if self.l2 is not None:
            if self.l2.l2 is not None:
                raise ValueError("at most two cache levels are supported")
            if self.l2.line_bytes < self.line_bytes:
                raise ValueError(
                    "L2 line size must be >= L1 line size "
                    f"({self.l2.line_bytes} < {self.line_bytes})"
                )

    @property
    def size_bytes(self) -> int:
        """Data capacity of this level (excluding any L2)."""
        return self.line_bytes * self.sets * self.ways

    @property
    def line_words(self) -> int:
        return self.line_bytes // WORD_BYTES

    def spec(self) -> str:
        """Round-trippable compact form (see :func:`parse_cache_spec`)."""
        text = f"{self.sets}x{self.ways}x{self.line_bytes}"
        if not self.write_back:
            text += "wt"
        if self.l2 is not None:
            text += f"+l2={self.l2.spec()}"
        return text

    def describe(self) -> str:
        policy = "wb" if self.write_back else "wt"
        text = (
            f"{self.size_bytes}B ({self.sets}s x {self.ways}w x "
            f"{self.line_bytes}B, {policy})"
        )
        if self.l2 is not None:
            text += f" + L2 {self.l2.describe()}"
        return text


#: Ladder swept by ``--sweep`` without a value: cache capacities matching
#: the SPM explorer's DEFAULT_CAPACITIES (256 B .. 16 KiB).
DEFAULT_CACHE_SWEEP: tuple[CacheConfig, ...] = (
    CacheConfig(line_bytes=16, sets=16, ways=1),
    CacheConfig(line_bytes=16, sets=32, ways=1),
    CacheConfig(line_bytes=32, sets=16, ways=2),
    CacheConfig(line_bytes=32, sets=32, ways=2),
    CacheConfig(line_bytes=32, sets=64, ways=2),
    CacheConfig(line_bytes=32, sets=128, ways=2),
    CacheConfig(line_bytes=32, sets=128, ways=4),
)


def parse_cache_spec(text: str) -> CacheConfig:
    """Parse the compact cache-config syntax.

    ``SETSxWAYSxLINE[wt][+l2=SETSxWAYSxLINE[wt]]`` — e.g. ``64x2x32``,
    ``64x2x32wt``, ``64x2x32+l2=256x4x64``. Raises :class:`ValueError`
    with a readable message on malformed specs (geometry constraints are
    enforced by :class:`CacheConfig` itself).
    """
    spec = text.strip()
    l2: CacheConfig | None = None
    if "+" in spec:
        spec, _, tail = spec.partition("+")
        if not tail.startswith("l2="):
            raise ValueError(
                f"invalid cache spec {text!r}: expected '+l2=...' after "
                "the L1 geometry"
            )
        l2 = parse_cache_spec(tail[3:])
    write_back = True
    if spec.endswith("wt"):
        write_back = False
        spec = spec[:-2]
    elif spec.endswith("wb"):
        spec = spec[:-2]
    parts = spec.split("x")
    if len(parts) != 3:
        raise ValueError(
            f"invalid cache spec {text!r}: expected SETSxWAYSxLINE[wt]"
        )
    try:
        sets, ways, line_bytes = (int(part) for part in parts)
    except ValueError:
        raise ValueError(
            f"invalid cache spec {text!r}: SETS, WAYS and LINE must be "
            "integers"
        ) from None
    return CacheConfig(line_bytes=line_bytes, sets=sets, ways=ways,
                       write_back=write_back, l2=l2)


@dataclass(frozen=True)
class CacheLevelStats:
    """Event counts of one cache level over a whole run."""

    reads: int
    writes: int
    read_misses: int
    write_misses: int
    evictions: int
    fills: int
    writebacks: int
    through_write_words: int

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        accesses = self.accesses
        return self.misses / accesses if accesses else 0.0


@dataclass(frozen=True)
class CacheSimResult:
    """Everything one streaming cache simulation tallied.

    ``reads``/``writes`` count the CPU-side accesses the sink routed to
    the cache; ``spm_reads``/``spm_writes`` count accesses that bypassed
    it because their address fell inside an SPM-resident interval
    (hybrid mode). ``levels[0]`` is L1; ``levels[1]`` (when present) L2.
    """

    config: CacheConfig
    levels: tuple[CacheLevelStats, ...]
    main_read_words: int
    main_write_words: int
    reads: int
    writes: int
    spm_reads: int = 0
    spm_writes: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def spm_accesses(self) -> int:
        return self.spm_reads + self.spm_writes

    @property
    def l1(self) -> CacheLevelStats:
        return self.levels[0]

    @property
    def l1_miss_rate(self) -> float:
        return self.levels[0].miss_rate

    @property
    def main_words(self) -> int:
        return self.main_read_words + self.main_write_words


class MainMemory:
    """Terminal level: tallies word traffic that leaves the hierarchy."""

    __slots__ = ("read_words", "write_words")

    def __init__(self) -> None:
        self.read_words = 0
        self.write_words = 0

    def request(self, addr: int, size: int, is_write: bool) -> None:
        words = (size + WORD_BYTES - 1) // WORD_BYTES
        if is_write:
            self.write_words += words
        else:
            self.read_words += words


class CacheLevel:
    """Runtime state of one set-associative level with LRU replacement.

    Each set is a dict mapping the full line number to its dirty flag;
    dict insertion order doubles as the LRU order (hits pop + reinsert),
    the same idiom the pipeline's :class:`ArtifactCache` uses.
    """

    __slots__ = (
        "line_bytes", "_shift", "_nsets", "_ways", "_write_back", "_below",
        "_sets", "reads", "writes", "read_misses", "write_misses",
        "evictions", "fills", "writebacks", "through_write_words",
    )

    def __init__(self, config: CacheConfig, below) -> None:
        self.line_bytes = config.line_bytes
        self._shift = config.line_bytes.bit_length() - 1
        self._nsets = config.sets
        self._ways = config.ways
        self._write_back = config.write_back
        self._below = below
        self._sets: list[dict[int, bool]] = [
            {} for _ in range(config.sets)
        ]
        self.reads = 0
        self.writes = 0
        self.read_misses = 0
        self.write_misses = 0
        self.evictions = 0
        self.fills = 0
        self.writebacks = 0
        self.through_write_words = 0

    def request(self, addr: int, size: int, is_write: bool) -> None:
        """Serve one access (from the CPU or the level above).

        Accesses that straddle a line boundary touch every covered line
        (one lookup each); the overwhelmingly common single-line case
        takes the straight path.
        """
        shift = self._shift
        first = addr >> shift
        last = (addr + size - 1) >> shift
        if first == last:
            self._touch(first, addr, size, is_write)
            return
        for line in range(first, last + 1):
            lo = max(addr, line << shift)
            hi = min(addr + size, (line + 1) << shift)
            self._touch(line, lo, hi - lo, is_write)

    def _touch(self, line: int, addr: int, size: int, is_write: bool) -> None:
        lines = self._sets[line % self._nsets]
        dirty = lines.pop(line, None)
        if not is_write:
            self.reads += 1
            if dirty is None:
                self.read_misses += 1
                self._fill(line, lines)
                lines[line] = False
            else:
                lines[line] = dirty  # reinsert at MRU
            return
        self.writes += 1
        if self._write_back:  # write-allocate
            if dirty is None:
                self.write_misses += 1
                self._fill(line, lines)
            lines[line] = True
        else:  # write-through, no-write-allocate
            if dirty is None:
                self.write_misses += 1
            else:
                lines[line] = False  # WT lines are never dirty
            self.through_write_words += (size + WORD_BYTES - 1) // WORD_BYTES
            self._below.request(addr, size, True)

    def _fill(self, line: int, lines: dict[int, bool]) -> None:
        """Fetch ``line`` from below, evicting LRU victims as needed
        (``lines`` no longer contains ``line`` when this is called)."""
        while len(lines) >= self._ways:
            victim = next(iter(lines))
            victim_dirty = lines.pop(victim)
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
                self._below.request(victim << self._shift, self.line_bytes,
                                    True)
        self.fills += 1
        self._below.request(line << self._shift, self.line_bytes, False)

    def flush(self) -> None:
        """Write every dirty line back down; idempotent (lines stay
        resident but clean, so a second flush moves nothing)."""
        for lines in self._sets:
            for line, dirty in list(lines.items()):
                if dirty:
                    self.writebacks += 1
                    self._below.request(line << self._shift, self.line_bytes,
                                        True)
                    lines[line] = False

    def stats(self) -> CacheLevelStats:
        return CacheLevelStats(
            reads=self.reads,
            writes=self.writes,
            read_misses=self.read_misses,
            write_misses=self.write_misses,
            evictions=self.evictions,
            fills=self.fills,
            writebacks=self.writebacks,
            through_write_words=self.through_write_words,
        )


class CacheHierarchy:
    """L1 (+ optional L2) over main memory, for one streaming run."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.main = MainMemory()
        if config.l2 is not None:
            self.l2: CacheLevel | None = CacheLevel(config.l2, self.main)
            self.l1 = CacheLevel(config, self.l2)
        else:
            self.l2 = None
            self.l1 = CacheLevel(config, self.main)

    def access(self, addr: int, size: int, is_write: bool) -> None:
        self.l1.request(addr, size, is_write)

    def flush(self) -> None:
        """Drain dirty data to main memory, L1 first (its write-backs may
        dirty L2 lines, which the L2 flush then pushes to main)."""
        self.l1.flush()
        if self.l2 is not None:
            self.l2.flush()

    def result(self, reads: int, writes: int,
               spm_reads: int = 0, spm_writes: int = 0) -> CacheSimResult:
        levels = (self.l1.stats(),)
        if self.l2 is not None:
            levels += (self.l2.stats(),)
        return CacheSimResult(
            config=self.config,
            levels=levels,
            main_read_words=self.main.read_words,
            main_write_words=self.main.write_words,
            reads=reads,
            writes=writes,
            spm_reads=spm_reads,
            spm_writes=spm_writes,
        )


def hierarchy_energy(result: CacheSimResult, energy: EnergyModel) -> float:
    """Energy of serving ``result``'s cached accesses, in nanojoules.

    Follows the accounting model in the module docstring: L1 lookups plus
    word-granular inter-level traffic charged at both endpoints. SPM-side
    energy of a hybrid run is *not* included — the report layer adds it
    (see :mod:`repro.cachesim.report`).
    """
    l1 = result.levels[0]
    total = energy.cache_energy(l1.reads, l1.writes)
    configs = [result.config]
    if result.config.l2 is not None:
        configs.append(result.config.l2)
    for index, (stats, config) in enumerate(zip(result.levels, configs)):
        below_is_main = index == len(configs) - 1
        below_read = (energy.main_read_nj if below_is_main
                      else energy.cache_read_nj)
        below_write = (energy.main_write_nj if below_is_main
                       else energy.cache_write_nj)
        line_words = config.line_words
        total += stats.fills * line_words * (below_read + energy.cache_write_nj)
        total += stats.writebacks * line_words * (energy.cache_read_nj
                                                  + below_write)
        total += stats.through_write_words * below_write
    return total
