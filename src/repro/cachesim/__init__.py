"""Cache-hierarchy co-simulation: the hardware baseline the SPM displaces.

Public surface:

* :class:`~repro.cachesim.model.CacheConfig` / ``parse_cache_spec`` —
  cache geometry and policy (plus optional L2);
* :class:`~repro.cachesim.sink.CacheSink` — streaming set-associative
  simulation over the batched trace-sink protocol;
* :class:`~repro.cachesim.report.HierarchyReport` — pure-cache vs
  SPM+cache comparison for one evaluation-matrix cell.
"""

from repro.cachesim.model import (
    DEFAULT_CACHE_SWEEP,
    WORD_BYTES,
    CacheConfig,
    CacheHierarchy,
    CacheLevelStats,
    CacheSimResult,
    hierarchy_energy,
    parse_cache_spec,
)
from repro.cachesim.report import HierarchyReport, build_hierarchy_report
from repro.cachesim.sink import (
    CacheSink,
    allocation_intervals,
    merge_intervals,
)

__all__ = [
    "DEFAULT_CACHE_SWEEP",
    "WORD_BYTES",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevelStats",
    "CacheSimResult",
    "CacheSink",
    "HierarchyReport",
    "allocation_intervals",
    "build_hierarchy_report",
    "hierarchy_energy",
    "merge_intervals",
    "parse_cache_spec",
]
