"""Streaming cache simulation as a trace sink (zero materialization).

:class:`CacheSink` implements both entry points of the engines' sink
protocol (:class:`repro.sim.trace.TraceSink`): the batched
:meth:`emit_block` hot path — attach it to a live run via
``run_compiled(compiled, sinks=(sink,))`` — and the per-record
:meth:`emit` used to replay stored traces. Either way the trace is
consumed access by access and only counters survive, exactly like the
extractor and the validation sink.

Hybrid (SPM + cache) mode replays an SPM allocation's address intervals:
every access whose address falls inside a selected buffer's interval is
served by the scratch pad (tallied as an SPM read/write) and never
reaches the cache — the DMA-style fills and write-backs of the SPM
buffers themselves go straight to main memory and are accounted from the
allocation's transfer volumes by the report layer, not simulated here.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.cachesim.model import CacheHierarchy, CacheSimResult
from repro.sim.trace import Access, TraceRecord
from repro.spm.graph import reference_interval


def merge_intervals(
    intervals: "list[tuple[int, int]] | tuple[tuple[int, int], ...]",
) -> tuple[tuple[int, int], ...]:
    """Sort half-open ``[lo, hi)`` intervals and coalesce overlaps."""
    merged: list[tuple[int, int]] = []
    for lo, hi in sorted(interval for interval in intervals
                         if interval[1] > interval[0]):
        if merged and lo <= merged[-1][1]:
            last_lo, last_hi = merged[-1]
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


def allocation_intervals(allocation) -> tuple[tuple[int, int], ...]:
    """The merged address intervals an SPM allocation keeps resident.

    Every reference served by a selected reuse-graph node contributes its
    :func:`~repro.spm.graph.reference_interval`; allocations produced by
    the legacy flat :func:`~repro.spm.allocator.allocate` (no graph
    nodes) fall back to the selected candidates' references.
    """
    references = [
        reference
        for node in allocation.nodes
        for reference in node.references
    ] or [candidate.reference for candidate in allocation.selected]
    return merge_intervals([reference_interval(ref) for ref in references])


class CacheSink:
    """A trace sink that drives a :class:`CacheHierarchy` online.

    ``spm_intervals`` (merged, sorted, half-open) switches on hybrid
    mode: addresses inside them bypass the cache. Checkpoint records are
    ignored — cache behaviour depends only on the access stream.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        spm_intervals: tuple[tuple[int, int], ...] = (),
    ) -> None:
        self.hierarchy = hierarchy
        self._intervals = merge_intervals(spm_intervals)
        self._starts = [lo for lo, _hi in self._intervals]
        self._ends = [hi for _lo, hi in self._intervals]
        self.reads = 0
        self.writes = 0
        self.spm_reads = 0
        self.spm_writes = 0
        self._finished: CacheSimResult | None = None

    def emit(self, record: TraceRecord) -> None:
        if isinstance(record, Access):
            self._route(record.addr, record.size, record.is_write)

    def emit_block(self, accesses, checkpoints) -> None:
        # Checkpoints carry no addresses; only the access tuples matter.
        access = self.hierarchy.access
        if not self._starts:
            reads = writes = 0
            for _pc, addr, size, is_write in accesses:
                if is_write:
                    writes += 1
                else:
                    reads += 1
                access(addr, size, is_write)
            self.reads += reads
            self.writes += writes
            return
        starts, ends = self._starts, self._ends
        reads = writes = spm_reads = spm_writes = 0
        for _pc, addr, size, is_write in accesses:
            index = bisect_right(starts, addr) - 1
            if index >= 0 and addr < ends[index]:
                if is_write:
                    spm_writes += 1
                else:
                    spm_reads += 1
            elif is_write:
                writes += 1
                access(addr, size, True)
            else:
                reads += 1
                access(addr, size, False)
        self.reads += reads
        self.writes += writes
        self.spm_reads += spm_reads
        self.spm_writes += spm_writes

    def _route(self, addr: int, size: int, is_write: bool) -> None:
        index = bisect_right(self._starts, addr) - 1
        if index >= 0 and addr < self._ends[index]:
            if is_write:
                self.spm_writes += 1
            else:
                self.spm_reads += 1
            return
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.hierarchy.access(addr, size, is_write)

    def finish(self) -> CacheSimResult:
        """Flush dirty lines and snapshot the counters (idempotent)."""
        if self._finished is None:
            self.hierarchy.flush()
            self._finished = self.hierarchy.result(
                self.reads, self.writes, self.spm_reads, self.spm_writes
            )
        return self._finished
