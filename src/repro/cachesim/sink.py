"""Streaming cache simulation as a trace sink (zero materialization).

:class:`CacheSink` implements both entry points of the engines' sink
protocol (:class:`repro.sim.trace.TraceSink`): the batched
:meth:`emit_block` hot path — attach it to a live run via
``run_compiled(compiled, sinks=(sink,))`` — and the per-record
:meth:`emit` used to replay stored traces. Either way the trace is
consumed access by access and only counters survive, exactly like the
extractor and the validation sink.

Hybrid (SPM + cache) mode replays an SPM allocation's address intervals:
every access whose address falls inside a selected buffer's interval is
served by the scratch pad (tallied as an SPM read/write) and never
reaches the cache — the DMA-style fills and write-backs of the SPM
buffers themselves go straight to main memory and are accounted from the
allocation's transfer volumes by the report layer, not simulated here.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.cachesim.model import CacheHierarchy, CacheSimResult
from repro.sim.trace import HAVE_NUMPY, Access, ColumnBlock, TraceRecord
from repro.spm.graph import reference_interval

if HAVE_NUMPY:
    import numpy as _np


def merge_intervals(
    intervals: "list[tuple[int, int]] | tuple[tuple[int, int], ...]",
) -> tuple[tuple[int, int], ...]:
    """Sort half-open ``[lo, hi)`` intervals and coalesce overlaps."""
    merged: list[tuple[int, int]] = []
    for lo, hi in sorted(interval for interval in intervals
                         if interval[1] > interval[0]):
        if merged and lo <= merged[-1][1]:
            last_lo, last_hi = merged[-1]
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


def allocation_intervals(allocation) -> tuple[tuple[int, int], ...]:
    """The merged address intervals an SPM allocation keeps resident.

    Every reference served by a selected reuse-graph node contributes its
    :func:`~repro.spm.graph.reference_interval`; allocations produced by
    the legacy flat :func:`~repro.spm.allocator.allocate` (no graph
    nodes) fall back to the selected candidates' references.
    """
    references = [
        reference
        for node in allocation.nodes
        for reference in node.references
    ] or [candidate.reference for candidate in allocation.selected]
    return merge_intervals([reference_interval(ref) for ref in references])


class CacheSink:
    """A trace sink that drives a :class:`CacheHierarchy` online.

    ``spm_intervals`` (merged, sorted, half-open) switches on hybrid
    mode: addresses inside them bypass the cache. Checkpoint records are
    ignored — cache behaviour depends only on the access stream.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        spm_intervals: tuple[tuple[int, int], ...] = (),
    ) -> None:
        self.hierarchy = hierarchy
        self._intervals = merge_intervals(spm_intervals)
        self._starts = [lo for lo, _hi in self._intervals]
        self._ends = [hi for _lo, hi in self._intervals]
        if HAVE_NUMPY and self._starts:
            self._np_starts = _np.array(self._starts, dtype=_np.int64)
            self._np_ends = _np.array(self._ends, dtype=_np.int64)
        self.reads = 0
        self.writes = 0
        self.spm_reads = 0
        self.spm_writes = 0
        self._finished: CacheSimResult | None = None

    def emit(self, record: TraceRecord) -> None:
        if isinstance(record, Access):
            self._route(record.addr, record.size, record.is_write)

    def emit_block(self, accesses, checkpoints) -> None:
        # Checkpoints carry no addresses; only the access tuples matter.
        access = self.hierarchy.access
        if not self._starts:
            reads = writes = 0
            for _pc, addr, size, is_write in accesses:
                if is_write:
                    writes += 1
                else:
                    reads += 1
                access(addr, size, is_write)
            self.reads += reads
            self.writes += writes
            return
        starts, ends = self._starts, self._ends
        reads = writes = spm_reads = spm_writes = 0
        for _pc, addr, size, is_write in accesses:
            index = bisect_right(starts, addr) - 1
            if index >= 0 and addr < ends[index]:
                if is_write:
                    spm_writes += 1
                else:
                    spm_reads += 1
            elif is_write:
                writes += 1
                access(addr, size, True)
            else:
                reads += 1
                access(addr, size, False)
        self.reads += reads
        self.writes += writes
        self.spm_reads += spm_reads
        self.spm_writes += spm_writes

    def emit_columns(self, block: ColumnBlock) -> None:
        """Columnar fast path: vectorized SPM routing and read/write
        tallies, then — for the dominant single-level write-back case —
        an inlined LRU walk over plain line-number lists with run
        skipping (consecutive accesses to one line collapse to counter
        bumps). Counter-for-counter identical to :meth:`emit_block`:
        write-through, L2 and line-crossing accesses take the exact
        per-access path through :meth:`CacheHierarchy.access`.
        """
        if block.n == 0:
            return
        if not HAVE_NUMPY:
            self.emit_block(*block.to_tuples())
            return
        addrs = block.addr
        sizes = block.size
        w = block.is_write != 0
        if self._starts:
            index = _np.searchsorted(self._np_starts, addrs,
                                     side="right") - 1
            inside = index >= 0
            inside &= addrs < self._np_ends[_np.where(inside, index, 0)]
            spm_count = int(_np.count_nonzero(inside))
            if spm_count:
                spm_writes = int(_np.count_nonzero(inside & w))
                self.spm_writes += spm_writes
                self.spm_reads += spm_count - spm_writes
                keep = ~inside
                addrs = addrs[keep]
                sizes = sizes[keep]
                w = w[keep]
                if addrs.shape[0] == 0:
                    return
        n = addrs.shape[0]
        writes = int(_np.count_nonzero(w))
        self.writes += writes
        self.reads += n - writes
        hierarchy = self.hierarchy
        l1 = hierarchy.l1
        line_bytes = l1.line_bytes
        crossing = ((addrs & (line_bytes - 1)) + sizes) > line_bytes
        if (hierarchy.l2 is not None or not l1._write_back
                or bool(crossing.any())):
            access = hierarchy.access
            for addr, size, is_write in zip(addrs.tolist(), sizes.tolist(),
                                            w.tolist()):
                access(addr, size, is_write)
            return
        # Single-level write-back, no line crossings: every access is
        # exactly one _touch on its line, and addr/size no longer matter.
        lines_list = (addrs >> l1._shift).tolist()
        writes_list = w.tolist()
        sets = l1._sets
        nsets = l1._nsets
        fill = l1._fill
        reads_c = writes_c = read_misses = write_misses = 0
        prev_line = -1
        prev_set: dict | None = None
        prev_dirty = False
        for line, is_write in zip(lines_list, writes_list):
            if line == prev_line:
                # The line is already MRU; pop+reinsert would not move
                # it, so only the counters (and a dirty upgrade) remain.
                if is_write:
                    writes_c += 1
                    if not prev_dirty:
                        prev_set[line] = True
                        prev_dirty = True
                else:
                    reads_c += 1
                continue
            lset = sets[line % nsets]
            dirty = lset.pop(line, None)
            if is_write:
                writes_c += 1
                if dirty is None:
                    write_misses += 1
                    fill(line, lset)
                lset[line] = True
                prev_dirty = True
            else:
                reads_c += 1
                if dirty is None:
                    read_misses += 1
                    fill(line, lset)
                    lset[line] = False
                    prev_dirty = False
                else:
                    lset[line] = dirty
                    prev_dirty = dirty
            prev_line = line
            prev_set = lset
        l1.reads += reads_c
        l1.writes += writes_c
        l1.read_misses += read_misses
        l1.write_misses += write_misses

    def _route(self, addr: int, size: int, is_write: bool) -> None:
        index = bisect_right(self._starts, addr) - 1
        if index >= 0 and addr < self._ends[index]:
            if is_write:
                self.spm_writes += 1
            else:
                self.spm_reads += 1
            return
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.hierarchy.access(addr, size, is_write)

    def finish(self) -> CacheSimResult:
        """Flush dirty lines and snapshot the counters (idempotent)."""
        if self._finished is None:
            self.hierarchy.flush()
            self._finished = self.hierarchy.result(
                self.reads, self.writes, self.spm_reads, self.spm_writes
            )
        return self._finished
