"""Disk-backed, content-addressed artifact store (the cache's L2 tier).

The pipeline's in-memory :class:`~repro.pipeline.ArtifactCache` LRUs make
repeated work free *within* one process, but the paper's amortization
claim — profile once, optimize many times — spans process boundaries:
``_fan_out`` worker processes and every fresh CLI invocation used to
recompute compilation, simulation and extraction from scratch. The
:class:`ArtifactStore` persists those artifacts under the same content
keys, so any process pointed at the same cache directory serves them
from disk instead of re-simulating.

Design constraints (concurrent workers share one directory):

* **Atomic writes** — entries are written to a temp file in the target
  directory and published with :func:`os.replace`, so a reader never
  observes a torn entry.
* **Integrity** — every entry embeds a magic tag, a schema-version word
  and a SHA-256 of its payload. A corrupted, truncated or
  version-mismatched entry reads as a miss (and is unlinked best-effort);
  the caller silently recomputes.
* **Code binding** — entries live under a directory named by the schema
  version *and* a fingerprint of the ``repro`` package's own source
  code, so artifacts never outlive a semantic change to the
  compiler/extractor (no stale tables after an upgrade) and checkouts at
  different versions sharing one cache directory occupy disjoint
  subtrees instead of thrashing each other's entries.
* **Race-free statistics** — each process tallies its own hit/miss/store
  counters and persists them to a private ``stats/<pid>-<token>.json``
  file (cumulative per process, atomically replaced), so concurrent
  workers never contend on a shared counter file.
  :meth:`ArtifactStore.aggregate_counters` sums the tallies; when the
  tally files pile up they are compacted (under an exclusive lock) into
  a single rolled-up file, so growth is bounded.

Layout::

    <root>/                          created mode 0700 when absent
      v<schema>-<code fp>/
        compile/<k[:2]>/<key>.art    entries, one file per content key
        extraction/...  exploration/...  validation/...
      stats/<pid>-<token>.json       per-process counter tallies

Trust model: entries are pickles. The integrity hash detects torn or
bit-rotted files, **not** hostile ones — anyone who can write to the
cache directory can execute code in every process that reads from it.
Keep the store on a private, same-trust-domain filesystem (the default
``~/.cache/repro`` is created ``0700``); do not point ``--cache-dir``
at world-writable locations or restore it from untrusted archives.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time
import weakref
from pathlib import Path

#: Bump when any persisted artifact's shape changes incompatibly; every
#: entry written under another version reads as a miss (recompute).
SCHEMA_VERSION = 1

#: The namespaces the pipeline persists (one per in-memory cache).
NAMESPACES = ("compile", "extraction", "exploration", "validation",
              "hierarchy", "fuzz")

_MAGIC = b"RPROART\0"
_ENTRY_SUFFIX = ".art"
_STATS_DIR = "stats"
_COUNTER_FIELDS = ("hits", "misses", "stores")
#: Compact the per-process stats tallies once this many files pile up.
_STATS_COMPACT_THRESHOLD = 256
_STATS_LOCK_STALE_SECONDS = 300.0

_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Digest of the ``repro`` package's own source code (memoized).

    Persisted artifacts are bound to it: any edit to the compiler,
    engines, extractor or allocators lands entries in a fresh subtree,
    so a warm run can never serve results computed by different code —
    without anyone having to remember to bump :data:`SCHEMA_VERSION`
    (which remains for *format* changes at a fixed code version).
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        digest = hashlib.sha256()
        package_root = Path(__file__).resolve().parent
        for path in sorted(package_root.rglob("*.py")):
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(blob)
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def default_cache_dir() -> str:
    """The cache directory used when none is given explicitly:
    ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg or os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _encode(artifact: object) -> bytes:
    payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        _MAGIC
        + SCHEMA_VERSION.to_bytes(4, "little")
        + hashlib.sha256(payload).digest()
        + payload
    )


def _decode(blob: bytes) -> tuple[object] | None:
    """``(artifact,)`` on success, ``None`` on any integrity failure."""
    header_len = len(_MAGIC) + 4 + 32
    if len(blob) < header_len or not blob.startswith(_MAGIC):
        return None
    version = int.from_bytes(blob[len(_MAGIC):len(_MAGIC) + 4], "little")
    if version != SCHEMA_VERSION:
        return None
    digest = blob[len(_MAGIC) + 4:header_len]
    payload = blob[header_len:]
    if hashlib.sha256(payload).digest() != digest:
        return None
    try:
        return (pickle.loads(payload),)
    except Exception:
        return None


def _atomic_write(path: Path, blob: bytes) -> None:
    """Publish ``blob`` at ``path`` via temp file + ``os.replace``, so a
    concurrent reader sees the old content or the new — never a torn
    file. The temp file is cleaned up on any failure."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False  # pid 0 marks compacted tallies, never a process
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # EPERM etc.: exists but not ours
    return True


#: Live stores, so forked children can drop counters inherited from the
#: parent (they would otherwise be double-counted when both processes
#: persist their tallies).
_LIVE_STORES: list = []


def _reset_counters_after_fork() -> None:
    for ref in _LIVE_STORES:
        store = ref()
        if store is not None:
            store._counters = {}
            store._token = None


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_counters_after_fork)


class ArtifactStore:
    """A content-addressed artifact directory shared across processes.

    Keys are the pipeline's content-hash cache keys; ``namespace`` is the
    in-memory cache name the entry backs. All methods degrade gracefully:
    I/O or integrity failures read as misses and failed writes are
    dropped, so the store can never make a pipeline run fail — only make
    it recompute.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._counters: dict[str, list[int]] = {}
        self._token: str | None = None
        _LIVE_STORES.append(weakref.ref(self))

    @property
    def path(self) -> Path:
        return self.root

    def _tree(self) -> Path:
        """The subtree owned by this schema version + code fingerprint;
        other versions sharing the root occupy disjoint subtrees."""
        return self.root / f"v{SCHEMA_VERSION}-{code_fingerprint()[:12]}"

    def _entry_path(self, namespace: str, key: str) -> Path:
        return self._tree() / namespace / key[:2] / (key + _ENTRY_SUFFIX)

    def _ensure_root(self) -> None:
        """Create the root when absent — private to the user (0700),
        since entries are pickles and the directory is a trust boundary.
        A pre-existing directory's permissions are left alone."""
        if self.root.exists():
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            os.chmod(self.root, 0o700)
        except OSError:
            pass

    def _bump(self, namespace: str, slot: int) -> None:
        counters = self._counters.setdefault(namespace, [0, 0, 0])
        counters[slot] += 1

    def get(self, namespace: str, key: str) -> object | None:
        """The stored artifact, or ``None`` (miss) when absent/corrupt."""
        path = self._entry_path(namespace, key)
        try:
            blob = path.read_bytes()
        except OSError:
            self._bump(namespace, 1)
            return None
        decoded = _decode(blob)
        if decoded is None:
            # Corrupted / truncated / schema-mismatched: silently fall
            # back to recompute (the next put republishes the entry).
            try:
                path.unlink()
            except OSError:
                pass
            self._bump(namespace, 1)
            return None
        self._bump(namespace, 0)
        return decoded[0]

    def put(self, namespace: str, key: str, artifact: object) -> bool:
        """Persist ``artifact`` atomically; ``False`` when it could not
        be (unpicklable artifact or I/O failure) — the entry simply stays
        memory-only."""
        try:
            blob = _encode(artifact)
        except Exception:
            return False
        path = self._entry_path(namespace, key)
        try:
            self._ensure_root()
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write(path, blob)
        except OSError:
            return False
        self._bump(namespace, 2)
        return True

    # -- statistics ---------------------------------------------------

    def session_counters(self) -> dict[str, dict[str, int]]:
        """This process's (unpersisted) counters by namespace."""
        return {
            namespace: dict(zip(_COUNTER_FIELDS, counts))
            for namespace, counts in self._counters.items()
        }

    def persist_counters(self) -> None:
        """Publish this process's cumulative counters to its private
        stats file (atomic replace; no cross-process contention)."""
        if not self._counters:
            return
        if self._token is None:
            self._token = os.urandom(4).hex()
        stats_dir = self.root / _STATS_DIR
        try:
            self._ensure_root()
            stats_dir.mkdir(parents=True, exist_ok=True)
            blob = json.dumps(self.session_counters()).encode()
            _atomic_write(stats_dir / f"{os.getpid()}-{self._token}.json",
                          blob)
        except OSError:
            return
        self._maybe_compact_stats(stats_dir)

    def _maybe_compact_stats(self, stats_dir: Path) -> None:
        """Roll dead processes' tally files into one, so the stats
        directory stays bounded however many invocations the store has
        served. Guarded by an exclusive lock file (stale locks expire)
        and restricted to dead-pid files: a live process would rewrite
        its cumulative tally after the merge and be double-counted.
        """
        try:
            if (len(list(stats_dir.glob("*.json")))
                    <= _STATS_COMPACT_THRESHOLD):
                return
        except OSError:
            return
        lock = stats_dir / ".compact.lock"
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                if (time.time() - lock.stat().st_mtime
                        < _STATS_LOCK_STALE_SECONDS):
                    return  # someone else is compacting
                lock.unlink()
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError:
                return
        except OSError:
            return
        os.close(fd)
        try:
            merged: dict[str, dict[str, int]] = {}
            victims: list[Path] = []
            for path in stats_dir.glob("*.json"):
                try:
                    pid = int(path.name.split("-", 1)[0])
                except ValueError:
                    continue
                if _pid_alive(pid):
                    continue
                try:
                    data = json.loads(path.read_text())
                except (OSError, ValueError):
                    victims.append(path)  # unreadable: just drop it
                    continue
                for namespace, fields in data.items():
                    bucket = merged.setdefault(
                        namespace, {name: 0 for name in _COUNTER_FIELDS}
                    )
                    for name in _COUNTER_FIELDS:
                        bucket[name] += int(fields.get(name, 0))
                victims.append(path)
            if merged:
                _atomic_write(stats_dir / f"0-{os.urandom(4).hex()}.json",
                              json.dumps(merged).encode())
            for path in victims:
                try:
                    path.unlink()
                except OSError:
                    pass
        except OSError:
            pass
        finally:
            try:
                lock.unlink()
            except OSError:
                pass

    def aggregate_counters(self) -> dict[str, dict[str, int]]:
        """Summed hit/miss/store counters across every process that has
        persisted a tally since the store was last cleared."""
        totals: dict[str, dict[str, int]] = {}
        for path in sorted((self.root / _STATS_DIR).glob("*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            for namespace, fields in data.items():
                bucket = totals.setdefault(
                    namespace, {name: 0 for name in _COUNTER_FIELDS}
                )
                for name in _COUNTER_FIELDS:
                    bucket[name] += int(fields.get(name, 0))
        return totals

    def entry_stats(self) -> dict[str, tuple[int, int]]:
        """``{namespace: (entry_count, total_bytes)}`` for this code
        version's entries on disk."""
        stats: dict[str, tuple[int, int]] = {}
        tree = self._tree()
        for namespace in NAMESPACES:
            count = size = 0
            for path in (tree / namespace).glob(f"*/*{_ENTRY_SUFFIX}"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                count += 1
            stats[namespace] = (count, size)
        return stats

    def clear(self) -> int:
        """Remove every entry — all code versions' subtrees — and the
        stats tallies; returns how many entries were removed.

        Only store-owned content (``v*-*`` version trees and the stats
        directory) is touched: pointing ``--cache-dir`` at a directory
        that also holds other files must never delete them.
        """
        removed = 0
        for tree in self.root.glob("v*-*"):
            if not tree.is_dir():
                continue
            removed += sum(
                1 for _ in tree.glob(f"*/*/*{_ENTRY_SUFFIX}")
            )
            shutil.rmtree(tree, ignore_errors=True)
        shutil.rmtree(self.root / _STATS_DIR, ignore_errors=True)
        try:
            self.root.rmdir()  # only when nothing else lives there
        except OSError:
            pass
        self._counters = {}
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"
