"""Seeded MiniC program generation: populations, not anecdotes.

Design note
===========

The suite's verification tower — fused-VM/AST parity, the IR verifier,
guard-elimination safety, the static-vs-dynamic FORAY oracle, the MiniC
linter, the SPM allocator invariants — was only ever exercised on seven
hand-written workloads. This package turns each of those invariants into
a population-scale differential-testing result, in the same shape
compiler fuzzers like Csmith use: generate random-but-valid programs,
run every implementation we have, and demand they agree.

The subsystem is four small passes with one rule each:

``profiles``
    A :class:`~repro.gen.profiles.GenProfile` bounds every grammar
    dimension (nest depth, trip/stride ranges, affine coefficient and
    constant ranges, array/helper counts, statement mix probabilities,
    access budget). A (profile, seed) pair names one program:
    ``gen:<profile>:<seed>``.

``build``
    The grammar-directed builder draws every choice from one explicit
    ``random.Random`` seeded with the (generator version, profile,
    seed) string — never from set/dict iteration order or ``hash()`` —
    so generation is byte-deterministic across interpreter versions.
    It emits a tiny statement IR, not text, and enforces the semantic
    invariants textual generators struggle with: indices are affine in
    the enclosing iterators only (never data), branch conditions read
    the seeded input ensemble (never constant), stores to array *k*
    only load arrays *< k* (a DAG, so no value recurrence can overflow
    doubles or blow up bigints), and division/modulo only ever see
    positive constants.

``render``
    The validity pass. Every affine index is interval-evaluated over
    its exact iteration box and each array is sized to ``max index +
    1``, so a rendered program cannot fault on any scenario by
    construction. Emission produces a ``source_template`` whose single
    ``${reps}`` parameter drives three input scenarios (nominal,
    alternative distribution, short run), packaged as a registry-
    compatible Workload. Uncalled helpers and untouched arrays are
    dropped here, which is what makes the shrinker a pure deleter.

``shrink``
    Subtree deletion to a fixpoint: drop one statement at a time,
    re-render, and keep the deletion iff the failing check still
    fails. Replayable from (seed, profile) alone.

``fuzz``
    The differential harness: fans (profile, seed) cells through the
    pipeline's process pool and runs the check battery per program —
    engine parity across guard-eliminated/checked/unfused/AST
    configurations, IR verification, static-oracle agreement, lint
    triage, allocator dominance (DP >= both greedies), replay traffic
    drop == prediction, and cross-input model transfer.

The generator version (:data:`~repro.gen.profiles.GENERATOR_VERSION`)
is stamped into every emitted source header, so content-addressed
artifact keys (``_compile_key`` et al.) roll over automatically when
the generator changes: warm fuzz reruns skip satisfied cells but can
never serve artifacts from an older generator.
"""

from __future__ import annotations

from repro.gen.build import GenError, GenProgram, build_ir, gen_name
from repro.gen.profiles import (
    GENERATOR_VERSION,
    PROFILES,
    GenProfile,
    get_profile,
)
from repro.gen.render import RenderedProgram, render_ir

__all__ = [
    "GENERATOR_VERSION",
    "PROFILES",
    "GenError",
    "GenProfile",
    "GenProgram",
    "RenderedProgram",
    "build_ir",
    "gen_name",
    "generate_program",
    "get_profile",
    "parse_gen_spec",
    "render_ir",
]


def generate_program(seed: int, profile: str = "small") -> RenderedProgram:
    """Deterministically generate ``gen:<profile>:<seed>``."""
    prof = get_profile(profile)
    return render_ir(build_ir(seed, prof), prof)


def parse_gen_spec(name: str) -> tuple[str, int]:
    """Split a ``gen:<profile>:<seed>`` spec into (profile, seed).

    Raises ``ValueError`` with a usage hint on malformed specs and
    ``KeyError`` (from :func:`get_profile`) on unknown profiles.
    """
    parts = name.split(":")
    if len(parts) != 3 or parts[0] != "gen" or not parts[1]:
        raise ValueError(
            f"malformed generated-workload spec {name!r}; expected "
            "gen:<profile>:<seed>, e.g. gen:small:42")
    get_profile(parts[1])  # helpful KeyError on unknown profiles
    try:
        seed = int(parts[2])
    except ValueError:
        raise ValueError(
            f"malformed generated-workload spec {name!r}: seed "
            f"{parts[2]!r} is not an integer") from None
    return parts[1], seed
