"""Population-scale differential fuzzing over generated programs.

Every invariant the repo asserts on its seven hand-written workloads is
re-asserted here on ``--seeds N`` generated programs, per program:

``parity``
    Guard-eliminated, fully-checked, unfused and AST engines must agree
    byte-for-byte on exit code, stdout, step/call counts and the
    formatted trace.
``ir``
    The structural bytecode verifier accepts the lowered + fused forms.
``lint``
    No error-severity linter findings; warnings are recorded as triage
    notes, not failures.
``static``
    The compile-time FORAY model agrees with the dynamic extraction on
    every modeled reference (contextual refusals count as the known
    FORAY gap, not disagreement).
``alloc``
    DP allocation benefit dominates both greedy policies at every
    capacity rung.
``traffic``
    Replaying the SPM-transformed program drops exactly the predicted
    main-memory traffic.
``transfer``
    The model extracted on the nominal input self-validates perfectly;
    cross-input replay accuracy is recorded as a population statistic.

A check that is vacuous for a given program (empty model after the
purge, nothing buffered) reports ``skip`` with a reason — never a
silent pass. Failing programs are minimized by the subtree-deletion
shrinker and reported with their seed, so every crash is replayable
from ``(profile, seed)`` alone.

The hidden ``seeded-bug`` check deliberately corrupts the static model
before the oracle comparison; it exists so the harness can prove it
would catch, shrink and report a real VM/static divergence.

Outcomes are cached in the ``fuzz`` store namespace keyed by the
generated source (which embeds generator version + profile + seed) and
the check/engine configuration, so warm reruns skip satisfied cells and
can never serve results across generator changes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.foray.extractor import extract_from_source
from repro.gen.build import GenProgram, build_ir, gen_name
from repro.gen.profiles import get_profile
from repro.gen.render import RenderedProgram, render_ir
from repro.gen.shrink import shrink_ir
from repro.lang.lint import lint_source
from repro.pipeline import (
    PipelineConfig,
    _content_key,
    _fan_out,
    _tiered_get,
    _tiered_put,
    fuzz_cache,
    persist_store_counters,
)
from repro.sim.machine import EngineConfig, compile_program, run_compiled
from repro.sim.memory import GLOBAL_BASE, HEAP_BASE
from repro.sim.trace import TraceCollector, format_trace
from repro.sim.verify import verify_compiled
from repro.spm.allocator import allocate_graph
from repro.spm.graph import ReuseGraph
from repro.spm.transform import emit_replay_source, emit_transformed_source
from repro.staticfar.analyze import analyze_static
from repro.staticfar.detector import detect
from repro.staticfar.oracle import compare_models

#: The default check battery, in execution order.
FUZZ_CHECKS = ("parity", "ir", "lint", "static", "alloc", "traffic",
               "transfer")

#: Deliberate-divergence check (never in the default set): corrupts the
#: static model, then demands the oracle notice.
SEEDED_BUG_CHECK = "seeded-bug"

KNOWN_CHECKS = FUZZ_CHECKS + (SEEDED_BUG_CHECK,)

#: Engine configurations whose observable behaviour must be identical.
PARITY_CONFIGS = (
    ("guard_elim", EngineConfig(engine="bytecode", fusion=True,
                                guard_elim=True)),
    ("checked", EngineConfig(engine="bytecode", fusion=True,
                             guard_elim=False)),
    ("unfused", EngineConfig(engine="bytecode", fusion=False)),
    ("ast", EngineConfig(engine="ast")),
)

#: SPM capacity rungs for the allocator-dominance check.
ALLOC_CAPACITIES = (256, 1024, 4096)


@dataclass(frozen=True)
class CheckOutcome:
    """One check on one program."""

    name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""


@dataclass(frozen=True)
class ProgramOutcome:
    """The full battery on one generated program."""

    spec: str
    profile: str
    seed: int
    status: str  # "pass" | "fail" | "error"
    checks: tuple[CheckOutcome, ...] = ()
    source_lines: int = 0
    #: Mean cross-input replay accuracy (None when transfer skipped).
    transfer_accuracy: float | None = None
    #: Name of the first failing check (shrink target).
    failing_check: str = ""
    #: Minimized reproducer (failures only; replayable from the seed).
    shrunk_source: str = ""
    shrunk_lines: int = 0
    #: Generation/harness crash detail (status == "error").
    error: str = ""
    #: Served from the fuzz store namespace on a warm rerun.
    cached: bool = False


@dataclass
class FuzzReport:
    """One fuzzing run over a seed range."""

    profile: str
    checks: tuple[str, ...]
    outcomes: list[ProgramOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[ProgramOutcome]:
        return [o for o in self.outcomes if o.status == "fail"]

    @property
    def errors(self) -> list[ProgramOutcome]:
        return [o for o in self.outcomes if o.status == "error"]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.errors

    def check_counts(self) -> dict[str, dict[str, int]]:
        """``{check: {pass: n, fail: n, skip: n}}`` over the population."""
        counts: dict[str, dict[str, int]] = {
            name: {"pass": 0, "fail": 0, "skip": 0} for name in self.checks
        }
        for outcome in self.outcomes:
            for check in outcome.checks:
                bucket = counts.setdefault(
                    check.name, {"pass": 0, "fail": 0, "skip": 0})
                bucket[check.status] = bucket.get(check.status, 0) + 1
        return counts

    def transfer_stats(self) -> tuple[int, float, float] | None:
        """(measured programs, min, mean) of cross-input accuracy."""
        values = [o.transfer_accuracy for o in self.outcomes
                  if o.transfer_accuracy is not None]
        if not values:
            return None
        return len(values), min(values), sum(values) / len(values)


class _CheckContext:
    """Shared per-program artifacts, computed lazily and at most once."""

    def __init__(self, rendered: RenderedProgram):
        self.rendered = rendered
        self.source = rendered.workload.source
        self._compiled = None
        self._extraction = None
        self._graph = None

    @property
    def compiled(self):
        if self._compiled is None:
            self._compiled = compile_program(self.source)
        return self._compiled

    @property
    def extraction(self):
        """(model, detector result, compiled-with-checkpoints)."""
        if self._extraction is None:
            model, _, compiled = extract_from_source(self.source)
            self._extraction = (model, detect(compiled.program), compiled)
        return self._extraction

    @property
    def graph(self) -> ReuseGraph:
        if self._graph is None:
            self._graph = ReuseGraph.from_model(self.extraction[0])
        return self._graph


class _GlobalTrafficCounter:
    """Trace sink counting accesses in the global (main-memory) range."""

    def __init__(self) -> None:
        self.count = 0

    def emit_block(self, accesses, checkpoints) -> None:
        for _pc, addr, _size, _is_write in accesses:
            if GLOBAL_BASE <= addr < HEAP_BASE:
                self.count += 1

    def emit(self, record) -> None:  # pragma: no cover - block protocol
        addr = getattr(record, "addr", None)
        if addr is not None and GLOBAL_BASE <= addr < HEAP_BASE:
            self.count += 1


def _check_parity(ctx: _CheckContext) -> CheckOutcome:
    baseline_name = baseline = None
    for name, config in PARITY_CONFIGS:
        collector = TraceCollector()
        result = run_compiled(ctx.compiled, sinks=(collector,),
                              config=config)
        signature = (result.exit_code, result.stdout, result.stats.steps,
                     result.stats.calls, format_trace(collector.records))
        if baseline is None:
            baseline_name, baseline = name, signature
        elif signature != baseline:
            fields = ("exit_code", "stdout", "steps", "calls", "trace")
            diverged = [f for f, a, b in zip(fields, signature, baseline)
                        if a != b]
            return CheckOutcome(
                "parity", "fail",
                f"{name} diverges from {baseline_name} on "
                f"{', '.join(diverged)}")
    return CheckOutcome("parity", "pass")


def _check_ir(ctx: _CheckContext) -> CheckOutcome:
    try:
        stats = verify_compiled(ctx.compiled, raise_on_error=True)
    except Exception as error:
        return CheckOutcome("ir", "fail", str(error)[:300])
    return CheckOutcome(
        "ir", "pass", f"{stats.fused_instructions} fused instructions")


def _check_lint(ctx: _CheckContext) -> CheckOutcome:
    findings = lint_source(ctx.source, filename=ctx.rendered.workload.name)
    errors = [f for f in findings if f.severity == "error"]
    if errors:
        return CheckOutcome(
            "lint", "fail",
            "; ".join(str(f) for f in errors[:3])[:300])
    if findings:
        return CheckOutcome(
            "lint", "pass", f"{len(findings)} warnings triaged")
    return CheckOutcome("lint", "pass")


def _static_report(ctx: _CheckContext, corrupt: bool = False):
    model, detector, compiled = ctx.extraction
    static = analyze_static(compiled.program, detector_result=detector,
                            name=ctx.rendered.workload.name)
    if corrupt:
        refs = list(static.unfiltered_references)
        if not refs:
            return None
        refs[0] = dataclasses.replace(refs[0],
                                      exec_count=refs[0].exec_count + 1)
        static = dataclasses.replace(static, unfiltered_references=refs)
    return compare_models(model, static, detector=detector,
                          name=ctx.rendered.workload.name)


def _check_static(ctx: _CheckContext) -> CheckOutcome:
    report = _static_report(ctx)
    if report.ok:
        gap = len(report.foray_gap)
        detail = (f"{report.matched} matched"
                  + (f", {gap} contextual refusals" if gap else ""))
        return CheckOutcome("static", "pass", detail)
    return CheckOutcome("static", "fail",
                        "; ".join(report.diff_lines()[:3])[:400])


def _check_seeded_bug(ctx: _CheckContext) -> CheckOutcome:
    """Corrupt one static exec count: the oracle MUST flag it. This
    check therefore *fails* on healthy programs with modeled refs — it
    exists to prove the harness catches and shrinks real divergence."""
    report = _static_report(ctx, corrupt=True)
    if report is None:
        return CheckOutcome(SEEDED_BUG_CHECK, "skip",
                            "no static references to corrupt")
    if report.ok:
        return CheckOutcome(
            SEEDED_BUG_CHECK, "skip",
            "corrupted reference not among matched refs")
    return CheckOutcome(
        SEEDED_BUG_CHECK, "fail",
        "seeded static/dynamic mismatch detected (intentional): "
        + "; ".join(report.diff_lines()[:1])[:200])


def _check_alloc(ctx: _CheckContext) -> CheckOutcome:
    graph = ctx.graph
    if not graph.nodes:
        return CheckOutcome("alloc", "skip", "no buffer candidates")
    for capacity in ALLOC_CAPACITIES:
        dp = allocate_graph(graph, capacity, "dp").total_benefit_nj
        for policy in ("greedy", "greedy-benefit"):
            benefit = allocate_graph(graph, capacity,
                                     policy).total_benefit_nj
            if dp < benefit - 1e-9:
                return CheckOutcome(
                    "alloc", "fail",
                    f"dp benefit {dp:.3f} < {policy} {benefit:.3f} "
                    f"at {capacity} B")
    return CheckOutcome("alloc", "pass",
                        f"{len(graph.nodes)} candidate nodes")


def _check_traffic(ctx: _CheckContext) -> CheckOutcome:
    model = ctx.extraction[0]
    allocation = allocate_graph(ctx.graph, ALLOC_CAPACITIES[-1])
    transformed = emit_transformed_source(allocation, model)
    if not transformed.buffered:
        return CheckOutcome("traffic", "skip", "nothing buffered")
    counts = []
    for source in (emit_replay_source(model), transformed.source):
        counter = _GlobalTrafficCounter()
        run_compiled(compile_program(source), sinks=(counter,),
                     config=EngineConfig())
        counts.append(counter.count)
    drop = counts[0] - counts[1]
    if drop != transformed.predicted_drop:
        return CheckOutcome(
            "traffic", "fail",
            f"measured drop {drop} != predicted "
            f"{transformed.predicted_drop}")
    return CheckOutcome("traffic", "pass", f"drop {drop} as predicted")


def _check_transfer(ctx: _CheckContext,
                    config: PipelineConfig) -> CheckOutcome:
    from repro.pipeline import validate_workload

    validation = validate_workload(ctx.rendered.workload.name,
                                   config=config)
    self_validation = validation.self_validation
    if self_validation.total_checked == 0:
        return CheckOutcome("transfer", "skip",
                            "model empty after the purge")
    if self_validation.full_accuracy != 1.0:
        return CheckOutcome(
            "transfer", "fail",
            f"self-validation full accuracy "
            f"{self_validation.full_accuracy:.4f} != 1.0")
    measured = [cell for cell in validation.cross
                if cell.report.total_checked > 0]
    if not measured:
        return CheckOutcome(
            "transfer", "pass",
            "self-validation exact; replays vacuous (accuracy "
            "unmeasured)")
    mean = (sum(c.report.overall_accuracy for c in measured)
            / len(measured))
    return CheckOutcome(
        "transfer", "pass",
        f"cross accuracy mean {mean:.4f} over {len(measured)} replays")


def _run_check(name: str, ctx: _CheckContext,
               config: PipelineConfig) -> CheckOutcome:
    if name == "parity":
        return _check_parity(ctx)
    if name == "ir":
        return _check_ir(ctx)
    if name == "lint":
        return _check_lint(ctx)
    if name == "static":
        return _check_static(ctx)
    if name == "alloc":
        return _check_alloc(ctx)
    if name == "traffic":
        return _check_traffic(ctx)
    if name == "transfer":
        return _check_transfer(ctx, config)
    if name == SEEDED_BUG_CHECK:
        return _check_seeded_bug(ctx)
    raise ValueError(
        f"unknown fuzz check {name!r}; known: {', '.join(KNOWN_CHECKS)}")


def _transfer_accuracy(outcome: CheckOutcome) -> float | None:
    if outcome.name != "transfer" or outcome.status != "pass":
        return None
    marker = "cross accuracy mean "
    if marker not in outcome.detail:
        return None
    try:
        return float(outcome.detail[len(marker):].split()[0])
    except ValueError:  # pragma: no cover - formatting is ours
        return None


def _fuzz_key(template: str, checks: tuple[str, ...], shrink: bool,
              config: PipelineConfig) -> str:
    # The template embeds the generator version + profile + seed (the
    # source header), so one key can never span generator revisions.
    return _content_key(
        "fuzz", template, checks, shrink, config.engine, config.fusion,
        config.trace_block, config.filter_config, config.max_steps)


def fuzz_program(
    profile_name: str,
    seed: int,
    checks: tuple[str, ...] = FUZZ_CHECKS,
    shrink: bool = True,
    config: PipelineConfig | None = None,
) -> ProgramOutcome:
    """Generate one program and run the differential battery on it."""
    config = config or PipelineConfig()
    for check in checks:
        if check not in KNOWN_CHECKS:
            raise ValueError(f"unknown fuzz check {check!r}; known: "
                             f"{', '.join(KNOWN_CHECKS)}")
    spec = gen_name(profile_name, seed)
    profile = get_profile(profile_name)
    try:
        ir = build_ir(seed, profile)
        rendered = render_ir(ir, profile)
    except Exception as error:
        return ProgramOutcome(
            spec=spec, profile=profile_name, seed=seed, status="error",
            error=f"generation failed: {type(error).__name__}: "
                  f"{str(error)[:300]}")

    template = rendered.workload.source_template or rendered.workload.source
    key = _fuzz_key(template, checks, shrink, config)
    if config.cache:
        cached = _tiered_get(fuzz_cache, key, config)
        if cached is not None:
            return dataclasses.replace(cached, cached=True)

    outcome = _fuzz_rendered(spec, profile_name, seed, ir, rendered,
                             checks, shrink, config)
    if config.cache:
        _tiered_put(fuzz_cache, key, outcome, config)
    return outcome


def _fuzz_rendered(
    spec: str,
    profile_name: str,
    seed: int,
    ir: GenProgram,
    rendered: RenderedProgram,
    checks: tuple[str, ...],
    shrink: bool,
    config: PipelineConfig,
) -> ProgramOutcome:
    ctx = _CheckContext(rendered)
    results: list[CheckOutcome] = []
    transfer = None
    try:
        for name in checks:
            result = _run_check(name, ctx, config)
            results.append(result)
            if transfer is None:
                transfer = _transfer_accuracy(result)
    except Exception as error:
        return ProgramOutcome(
            spec=spec, profile=profile_name, seed=seed, status="error",
            checks=tuple(results),
            source_lines=rendered.workload.source.count("\n"),
            error=f"harness crash in check: {type(error).__name__}: "
                  f"{str(error)[:300]}")

    failing = next((r for r in results if r.status == "fail"), None)
    source_lines = rendered.workload.source.count("\n")
    if failing is None:
        return ProgramOutcome(
            spec=spec, profile=profile_name, seed=seed, status="pass",
            checks=tuple(results), source_lines=source_lines,
            transfer_accuracy=transfer)

    shrunk_source = ""
    shrunk_lines = 0
    if shrink:
        def still_fails(candidate: RenderedProgram) -> bool:
            return _run_check(failing.name, _CheckContext(candidate),
                              config).status == "fail"

        result = shrink_ir(ir, still_fails)
        shrunk_source = result.source
        shrunk_lines = shrunk_source.count("\n")
    return ProgramOutcome(
        spec=spec, profile=profile_name, seed=seed, status="fail",
        checks=tuple(results), source_lines=source_lines,
        transfer_accuracy=transfer, failing_check=failing.name,
        shrunk_source=shrunk_source, shrunk_lines=shrunk_lines)


def _fuzz_worker(args) -> ProgramOutcome:
    profile_name, seed, checks, shrink, config = args
    outcome = fuzz_program(profile_name, seed, checks, shrink, config)
    # Worker processes exit via os._exit (no atexit): flush this
    # process's disk-cache counters before the pool reaps it.
    persist_store_counters(config)
    return outcome


def run_fuzz(
    profile_name: str = "small",
    seeds: int = 100,
    seed_start: int = 0,
    checks: tuple[str, ...] = FUZZ_CHECKS,
    jobs: int | None = None,
    shrink: bool = True,
    config: PipelineConfig | None = None,
) -> FuzzReport:
    """Fuzz ``seeds`` consecutive programs of one profile.

    ``jobs`` fans programs out over worker processes through the same
    machinery ``run_suite`` uses (0 = CPU count, None = ``config.jobs``).
    """
    config = config or PipelineConfig()
    get_profile(profile_name)  # helpful error before any work
    if jobs is None:
        jobs = config.jobs
    tasks = [(profile_name, seed, tuple(checks), shrink, config)
             for seed in range(seed_start, seed_start + seeds)]
    outcomes = _fan_out(tasks, _fuzz_worker, jobs)
    return FuzzReport(profile=profile_name, checks=tuple(checks),
                      outcomes=outcomes)
