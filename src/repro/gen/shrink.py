"""Seed-replayable shrinker: minimize failing programs by subtree
deletion.

The shrinker never synthesizes anything: it deletes one statement
subtree at a time from the builder IR, re-renders, and keeps the
deletion iff the caller's predicate still reports the failure. Deletion
can only shrink index intervals, so a deleted variant that renders at
all is still fault-free; variants whose render is rejected are simply
skipped. Uncalled helpers and untouched arrays disappear at emission
(see :mod:`repro.gen.render`), so no separate dead-code cleanup is
needed.

Because the IR for a (seed, profile) pair is deterministic and the
deletion order is a fixed structural walk, a shrink is replayable from
the recorded seed alone — the minimized source in a fuzz report can
always be regenerated bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.gen.build import Branch, GenError, GenProgram, Nest, Stmt
from repro.gen.render import RenderedProgram, render_ir


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    ir: GenProgram
    rendered: RenderedProgram
    #: Deletions attempted (kept + rejected).
    attempts: int
    #: Deletions kept (statements actually removed).
    deleted: int

    @property
    def source(self) -> str:
        return self.rendered.workload.source


def _deletion_sites(program: GenProgram) -> list[tuple[list[Stmt], int]]:
    """Every (block, index) a statement could be deleted from, in a
    deterministic post-order walk (children before their parents, so a
    whole failing region collapses bottom-up)."""
    sites: list[tuple[list[Stmt], int]] = []

    def walk(block: list[Stmt]) -> None:
        for index, stmt in enumerate(block):
            if isinstance(stmt, Nest):
                walk(stmt.body)
            elif isinstance(stmt, Branch):
                walk(stmt.then)
                walk(stmt.els)
            sites.append((block, index))

    for body in program.helpers:
        walk(body)
    walk(program.main)
    return sites


def shrink_ir(
    program: GenProgram,
    still_fails: Callable[[RenderedProgram], bool],
    max_attempts: int = 400,
) -> ShrinkResult:
    """Greedy fixpoint deletion: remove every subtree whose removal
    keeps ``still_fails`` true, bounded by ``max_attempts`` predicate
    evaluations.

    ``program`` is mutated in place (it is the deterministic rebuild of
    a seed, so nothing of value is lost) and returned in its minimized
    form together with its rendering.
    """
    attempts = deleted = 0
    rendered = render_ir(program)
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        # Sites are re-enumerated after every kept deletion (a deletion
        # invalidates indices after it and orphans sites inside the
        # removed subtree), walked parents-first so failing regions
        # collapse wholesale before their statements are tried one by
        # one.
        for block, index in reversed(_deletion_sites(program)):
            if attempts >= max_attempts:
                break
            victim = block.pop(index)
            attempts += 1
            try:
                candidate = render_ir(program)
            except GenError:
                block.insert(index, victim)
                continue
            try:
                failing = still_fails(candidate)
            except Exception:
                # A predicate crash on the candidate is not the failure
                # we are minimizing; reject the deletion.
                failing = False
            if failing:
                deleted += 1
                rendered = candidate
                progress = True
                break  # re-enumerate sites against the new shape
            block.insert(index, victim)
    return ShrinkResult(ir=program, rendered=rendered, attempts=attempts,
                        deleted=deleted)
