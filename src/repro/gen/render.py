"""Renderer: IR → sized, scenario-equipped MiniC workloads.

Rendering is the *validity pass*: before any text is emitted, every
affine index in the IR is interval-evaluated over its exact iteration
box (nominal frame count — the maximum any scenario uses), each data
array is sized to ``max index + 1``, and any reference whose interval
could go negative or exceed the profile's size cap is rejected with
:class:`~repro.gen.build.GenError`. A rendered program therefore cannot
fault on any scenario, by construction rather than by testing.

The emitted text is a ``source_template`` whose only parameter is the
frame count ``${reps}`` (numeric-literal substitution only, as the
workload contract requires), packaged as a registry-compatible
:class:`~repro.workloads.base.Workload` with three scenarios: nominal,
an alternative input distribution, and a short (fewer-frames) run.
Unreferenced arrays and uncalled helpers are dropped at emission, which
is what makes subtree deletion in the shrinker converge to minimal
sources without a separate dead-code pass.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from repro.gen.build import (
    INPUT_ARRAY,
    Affine,
    BinVal,
    Branch,
    CallStmt,
    ConstVal,
    GenError,
    GenProgram,
    IterVal,
    Load,
    Nest,
    Reduce,
    Stmt,
    Store,
    Value,
    gen_name,
)
from repro.gen.profiles import GENERATOR_VERSION, GenProfile, get_profile
from repro.sim.inputs import InputSpec
from repro.workloads.base import InputScenario, Workload, scenario_params

#: Alternative input ensembles the second scenario draws from
#: (distribution, amplitude, period).
_ALT_INPUTS = (
    ("ramp", 2048, 32),
    ("impulse", 512, 16),
    ("walk", 1024, 64),
    ("constant", 3, 64),
    ("uniform", 4096, 64),
)


@dataclass(frozen=True)
class RenderedProgram:
    """One generated program, rendered and registry-ready."""

    ir: GenProgram
    workload: Workload
    #: Final element count per emitted array id.
    array_sizes: dict[int, int]

    @property
    def source(self) -> str:
        return self.workload.source


# ---------------------------------------------------------------------------
# Interval analysis / sizing
# ---------------------------------------------------------------------------


class _Sizer:
    """Walks the IR once, checking bounds and sizing arrays."""

    def __init__(self, program: GenProgram, profile: GenProfile):
        self.program = program
        self.profile = profile
        #: max index seen per array id (-1 = untouched).
        self.max_index: dict[int, int] = {}
        #: helper id -> max base argument over surviving call sites.
        self.base_hi: dict[int, int] = {}
        self.max_depth_main = 0
        self.max_depth_helper: dict[int, int] = {}

    def _span(self, index: Affine, maxima: list[int], base_hi: int,
              what: str) -> tuple[int, int]:
        if len(index.coeffs) != len(maxima):
            raise GenError(
                f"{what}: affine arity {len(index.coeffs)} != loop depth "
                f"{len(maxima)}")
        lo = hi = index.const
        for coeff, maximum in zip(index.coeffs, maxima):
            term = coeff * maximum
            lo += min(0, term)
            hi += max(0, term)
        if index.with_base:
            hi += base_hi
        if lo < 0:
            raise GenError(f"{what}: index interval reaches {lo} < 0")
        return lo, hi

    def _touch(self, array: int, index: Affine, maxima: list[int],
               base_hi: int) -> None:
        _, hi = self._span(index, maxima, base_hi, f"array {array}")
        if array == INPUT_ARRAY:
            if hi >= self.profile.input_len:
                raise GenError(
                    f"input index can reach {hi} >= {self.profile.input_len}")
        elif hi >= self.profile.max_array_elems:
            raise GenError(
                f"array {array} index can reach {hi} >= size cap "
                f"{self.profile.max_array_elems}")
        if hi > self.max_index.get(array, -1):
            self.max_index[array] = hi

    def _value(self, value: Value, maxima: list[int], base_hi: int) -> None:
        if isinstance(value, Load):
            self._touch(value.array, value.index, maxima, base_hi)
        elif isinstance(value, BinVal):
            self._value(value.left, maxima, base_hi)
            self._value(value.right, maxima, base_hi)

    def _block(self, stmts: list[Stmt], maxima: list[int], base_hi: int,
               helper: int | None) -> None:
        for stmt in stmts:
            if isinstance(stmt, Store):
                self._touch(stmt.array, stmt.index, maxima, base_hi)
                self._value(stmt.value, maxima, base_hi)
            elif isinstance(stmt, Reduce):
                self._value(stmt.value, maxima, base_hi)
            elif isinstance(stmt, Nest):
                maxima.append(stmt.max_value)
                if helper is None:
                    self.max_depth_main = max(self.max_depth_main,
                                              len(maxima) - 1)
                else:
                    self.max_depth_helper[helper] = max(
                        self.max_depth_helper.get(helper, 0), len(maxima))
                self._block(stmt.body, maxima, base_hi, helper)
                maxima.pop()
            elif isinstance(stmt, Branch):
                self._touch(INPUT_ARRAY, stmt.index, maxima, base_hi)
                self._block(stmt.then, maxima, base_hi, helper)
                self._block(stmt.els, maxima, base_hi, helper)
            elif isinstance(stmt, CallStmt):
                if helper is not None:
                    raise GenError("helper bodies cannot call helpers")
                _, hi = self._span(stmt.arg, maxima, 0,
                                   f"helper{stmt.helper} arg")
                self.base_hi[stmt.helper] = max(
                    self.base_hi.get(stmt.helper, 0), hi)

    def run(self) -> None:
        program, profile = self.program, self.profile
        # Main first: it discovers which helpers are live and the range
        # of their base arguments, which the helper walk then uses.
        self._block(program.main, [profile.reps - 1], 0, helper=None)
        for helper, body in enumerate(program.helpers):
            if helper not in self.base_hi:
                continue  # uncalled: not emitted, not sized
            self._block(body, [], self.base_hi[helper], helper)


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def _elem_type_of(program: GenProgram, value: Value) -> str:
    if isinstance(value, Load):
        return program.elem_types[value.array]
    if isinstance(value, BinVal):
        if ("double" in (_elem_type_of(program, value.left),
                         _elem_type_of(program, value.right))):
            return "double"
        return "int"
    return "int"  # IterVal / ConstVal (short promotes to int anyway)


class _Emitter:
    def __init__(self, program: GenProgram):
        self.program = program

    def _array_name(self, array: int) -> str:
        return "input" if array == INPUT_ARRAY else f"a{array}"

    def _iter_name(self, pos: int, helper: bool) -> str:
        if helper:
            return f"i{pos + 1}"
        return "frame" if pos == 0 else f"i{pos}"

    def _affine(self, index: Affine, helper: bool) -> str:
        terms: list[str] = []
        if index.with_base:
            terms.append("base")
        for pos, coeff in enumerate(index.coeffs):
            if coeff == 0:
                continue
            name = self._iter_name(pos, helper)
            if coeff == 1:
                terms.append(name)
            elif coeff == -1:
                terms.append(f"-{name}")
            else:
                terms.append(f"{coeff} * {name}")
        if index.const or not terms:
            terms.append(str(index.const))
        out = terms[0]
        for term in terms[1:]:
            out += f" - {term[1:]}" if term.startswith("-") else f" + {term}"
        return out

    def _value(self, value: Value, helper: bool) -> str:
        if isinstance(value, Load):
            return (f"{self._array_name(value.array)}"
                    f"[{self._affine(value.index, helper)}]")
        if isinstance(value, IterVal):
            name = self._iter_name(value.pos, helper)
            if value.scale == 1 and value.offset == 0:
                return name
            body = name if value.scale == 1 else f"{value.scale} * {name}"
            if value.offset:
                body += f" + {value.offset}"
            return f"({body})"
        if isinstance(value, ConstVal):
            return str(value.value)
        return (f"({self._value(value.left, helper)} {value.op} "
                f"{self._value(value.right, helper)})")

    def _store(self, stmt: Store, helper: bool) -> str:
        program = self.program
        target = (f"{self._array_name(stmt.array)}"
                  f"[{self._affine(stmt.index, helper)}]")
        expr = self._value(stmt.value, helper)
        rhs_type = _elem_type_of(program, stmt.value)
        if stmt.self_read:
            expr = f"{target} + {expr}"
            if program.elem_types[stmt.array] == "double":
                rhs_type = "double"
        elem = program.elem_types[stmt.array]
        # MiniC follows C's implicit conversions, but the suite's idiom
        # is an explicit cast at every narrowing/float boundary.
        if rhs_type != elem and not (rhs_type == "int" and elem == "short"):
            expr = f"({elem})({expr})"
        elif rhs_type == "int" and elem == "short":
            expr = f"(short)({expr})"
        return f"{target} = {expr};"

    def _reduce(self, stmt: Reduce, helper: bool) -> str:
        expr = self._value(stmt.value, helper)
        if _elem_type_of(self.program, stmt.value) == "double":
            expr = f"(int)({expr})"
        return f"acc = acc + {expr};"

    def _block(self, stmts: list[Stmt], indent: int, loop_depth: int,
               helper: bool, live_helpers: set[int],
               out: list[str]) -> None:
        # ``indent`` is purely cosmetic; ``loop_depth`` is the number of
        # enclosing loops in this function, i.e. the loop-stack position
        # the next Nest iterator occupies (main's frame loop is pos 0).
        pad = "    " * indent
        for stmt in stmts:
            if isinstance(stmt, Store):
                out.append(pad + self._store(stmt, helper))
            elif isinstance(stmt, Reduce):
                out.append(pad + self._reduce(stmt, helper))
            elif isinstance(stmt, Nest):
                name = self._iter_name(loop_depth, helper)
                bump = "++" if stmt.step == 1 else f" = {name} + {stmt.step}"
                out.append(f"{pad}for ({name} = 0; {name} < {stmt.bound}; "
                           f"{name}{bump}) {{")
                self._block(stmt.body, indent + 1, loop_depth + 1, helper,
                            live_helpers, out)
                out.append(pad + "}")
            elif isinstance(stmt, Branch):
                cond = (f"input[{self._affine(stmt.index, helper)}] % "
                        f"{stmt.mod} {stmt.op} {stmt.rhs}")
                out.append(f"{pad}if ({cond}) {{")
                self._block(stmt.then, indent + 1, loop_depth, helper,
                            live_helpers, out)
                if stmt.els:
                    out.append(pad + "} else {")
                    self._block(stmt.els, indent + 1, loop_depth, helper,
                                live_helpers, out)
                out.append(pad + "}")
            elif isinstance(stmt, CallStmt):
                if stmt.helper not in live_helpers:
                    continue
                out.append(f"{pad}helper{stmt.helper}"
                           f"({self._affine(stmt.arg, False)});")


def render_ir(program: GenProgram,
              profile: GenProfile | None = None) -> RenderedProgram:
    """Size, validate and emit one generated program as a Workload."""
    profile = profile or get_profile(program.profile)
    sizer = _Sizer(program, profile)
    sizer.run()
    emitter = _Emitter(program)
    live_helpers = set(sizer.base_hi)

    lines: list[str] = [
        f"/* gen v{GENERATOR_VERSION} profile={profile.name} "
        f"seed={program.seed} */",
        f"int input[{profile.input_len}];",
    ]
    sizes: dict[int, int] = {INPUT_ARRAY: profile.input_len}
    for array in sorted(a for a in sizer.max_index if a != INPUT_ARRAY):
        size = sizer.max_index[array] + 1
        sizes[array] = size
        lines.append(
            f"{program.elem_types[array]} a{array}[{size}];")
    lines.append("int acc;")

    for helper in sorted(live_helpers):
        lines.append("")
        lines.append(f"void helper{helper}(int base) {{")
        depth = sizer.max_depth_helper.get(helper, 0)
        for k in range(1, depth + 1):
            lines.append(f"    int i{k};")
        emitter._block(program.helpers[helper], 1, 0, True, live_helpers,
                       lines)
        lines.append("}")

    lines.append("")
    lines.append("int main() {")
    for k in range(1, sizer.max_depth_main + 1):
        lines.append(f"    int i{k};")
    lines.append("    int frame;")
    lines.append(f"    read_samples(input, {profile.input_len});")
    lines.append("    for (frame = 0; frame < ${reps}; frame++) {")
    emitter._block(program.main, 2, 1, False, live_helpers, lines)
    lines.append("    }")
    lines.append('    printf("gen checksum %d\\n", acc);')
    lines.append("    return 0;")
    lines.append("}")
    template = "\n".join(lines) + "\n"

    alt = _ALT_INPUTS[
        random.Random(
            f"repro-gen-input-v{GENERATOR_VERSION}:{profile.name}:"
            f"{program.seed}"
        ).randrange(len(_ALT_INPUTS))
    ]
    scenarios = (
        InputScenario(
            name="nominal",
            description="profiling ensemble at the nominal frame count",
            params=scenario_params(reps=profile.reps),
        ),
        InputScenario(
            name=f"alt-{alt[0]}",
            description=f"{alt[0]} input ensemble at the nominal "
                        "frame count",
            input=InputSpec(distribution=alt[0], amplitude=alt[1],
                            period=alt[2]),
            params=scenario_params(reps=profile.reps),
        ),
        InputScenario(
            name="short-frames",
            description=f"nominal ensemble over {profile.short_reps} "
                        "frames",
            params=scenario_params(reps=profile.short_reps),
        ),
    )
    source = string.Template(template).substitute(reps=profile.reps)
    workload = Workload(
        name=gen_name(profile.name, program.seed),
        source=source,
        description=(
            f"generated program (gen v{GENERATOR_VERSION}, "
            f"profile {profile.name}, seed {program.seed})"),
        source_template=template,
        scenarios=scenarios,
    )
    return RenderedProgram(ir=program, workload=workload,
                           array_sizes=sizes)
