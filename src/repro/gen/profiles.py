"""Generation profiles: the grammar knobs of the seeded program builder.

A :class:`GenProfile` bounds every dimension the grammar can explore —
loop-nest depth, trip counts and strides, affine coefficient and
constant ranges, array/helper counts, branch/call/reduction
probabilities and the total access budget — so one profile name pins
down an entire program *population* (``gen:<profile>:<seed>``). The
three stock profiles scale the same grammar:

* ``small``  — CI-sized programs (a few thousand traced accesses);
* ``medium`` — workload-sized nests, deeper and wider;
* ``large``  — stress-sized populations for overnight fuzzing runs.

:data:`GENERATOR_VERSION` is stamped into every generated source header
(and therefore into every content-addressed artifact key built from the
source): bump it whenever the builder's output for a (seed, profile)
pair can change, and warm fuzz reruns will recompute instead of serving
artifacts from the older generator.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bump on any change that can alter the source a (seed, profile) pair
#: renders to. The version is part of the generated source text itself,
#: so every downstream artifact key changes with it.
GENERATOR_VERSION = 1


@dataclass(frozen=True)
class GenProfile:
    """Grammar bounds for one generated-program population."""

    name: str
    #: Nominal trip count of the outer frame loop (the ``${reps}``
    #: template parameter; the "short" scenario shrinks it).
    reps: int
    #: Frame-loop trips of the data-scale ("short") scenario.
    short_reps: int
    #: Samples staged into ``input[]`` via ``read_samples``.
    input_len: int
    #: Inclusive range of helper-function counts.
    helpers: tuple[int, int]
    #: Inclusive range of data-array counts (``input`` not included).
    arrays: tuple[int, int]
    #: Maximum loop-nest depth *below* the frame loop.
    max_depth: int
    #: Inclusive per-loop trip-count range.
    trip: tuple[int, int]
    #: Inclusive loop-stride range (``for (i = 0; i < N; i += s)``).
    step: tuple[int, int]
    #: Inclusive affine-coefficient magnitude range for nest iterators.
    coef: tuple[int, int]
    #: Inclusive affine constant-term range.
    const: tuple[int, int]
    #: Inclusive statements-per-block range.
    block_stmts: tuple[int, int]
    #: Probability of nesting another loop (per statement slot).
    p_nest: float
    #: Probability of a data-dependent branch (per statement slot).
    p_branch: float
    #: Probability of a helper call (per statement slot, main only).
    p_call: float
    #: Probability of a scalar reduction (per statement slot).
    p_reduce: float
    #: Probability a generated index coefficient is negative.
    p_negative_coef: float
    #: Probability the frame iterator participates in an index
    #: (streaming references: the window slides once per frame).
    p_frame_coef: float
    #: Probability a non-int element type (short/double) is picked.
    p_wide_types: float
    #: Hard cap on any one array's element count.
    max_array_elems: int
    #: Soft cap on the estimated traced accesses of a whole program.
    access_budget: int

    def __post_init__(self) -> None:
        if self.reps < 1 or not 1 <= self.short_reps <= self.reps:
            raise ValueError(
                f"profile {self.name!r}: need 1 <= short_reps <= reps"
            )
        for label, (lo, hi) in (("helpers", self.helpers),
                                ("arrays", self.arrays),
                                ("trip", self.trip), ("step", self.step),
                                ("coef", self.coef),
                                ("block_stmts", self.block_stmts)):
            if lo > hi or lo < 0:
                raise ValueError(
                    f"profile {self.name!r}: bad {label} range ({lo}, {hi})"
                )
        if self.trip[0] < 2:
            raise ValueError(
                f"profile {self.name!r}: trips below 2 generate zero- or "
                "single-trip loops the linter rejects"
            )
        if self.step[0] < 1:
            raise ValueError(f"profile {self.name!r}: step must be >= 1")


PROFILES: dict[str, GenProfile] = {
    profile.name: profile
    for profile in (
        GenProfile(
            name="small",
            reps=4, short_reps=2, input_len=256,
            helpers=(0, 2), arrays=(2, 4), max_depth=2,
            trip=(3, 8), step=(1, 2), coef=(0, 4), const=(0, 6),
            block_stmts=(1, 3),
            p_nest=0.35, p_branch=0.2, p_call=0.3, p_reduce=0.35,
            p_negative_coef=0.15, p_frame_coef=0.3, p_wide_types=0.25,
            max_array_elems=2048, access_budget=6_000,
        ),
        GenProfile(
            name="medium",
            reps=6, short_reps=2, input_len=1024,
            helpers=(1, 3), arrays=(3, 6), max_depth=3,
            trip=(4, 16), step=(1, 3), coef=(0, 6), const=(0, 8),
            block_stmts=(1, 4),
            p_nest=0.4, p_branch=0.25, p_call=0.35, p_reduce=0.35,
            p_negative_coef=0.2, p_frame_coef=0.35, p_wide_types=0.35,
            max_array_elems=8192, access_budget=60_000,
        ),
        GenProfile(
            name="large",
            reps=8, short_reps=3, input_len=4096,
            helpers=(1, 4), arrays=(4, 8), max_depth=3,
            trip=(4, 32), step=(1, 4), coef=(0, 8), const=(0, 12),
            block_stmts=(2, 5),
            p_nest=0.45, p_branch=0.25, p_call=0.4, p_reduce=0.4,
            p_negative_coef=0.2, p_frame_coef=0.4, p_wide_types=0.4,
            max_array_elems=32768, access_budget=400_000,
        ),
    )
}


def get_profile(name: str) -> GenProfile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(
            f"unknown generation profile {name!r}; known: {known}"
        ) from None
