"""Grammar-directed builder: seeded construction of the program IR.

The builder draws every choice from one explicit ``random.Random`` seeded
with ``(generator version, profile, seed)`` — never from set/dict
iteration order or ``hash()`` — so a (seed, profile) pair renders to
byte-identical source on every interpreter and platform. It produces a
small statement IR (:class:`GenProgram`), not text: the renderer sizes
arrays from the exact iteration-domain intervals of every index
expression (:mod:`repro.gen.render`), and the shrinker minimizes failing
programs by deleting IR subtrees (:mod:`repro.gen.shrink`).

Grammar shape (one program)::

    helpers*            void helperK(int base) { <nest over A[base + e]> }
    int main() {
        read_samples(input, N);
        for (frame = 0; frame < ${reps}; frame++) {   # template knob
            <typed loop nests: stores, loads, scalar reductions,
             data-dependent branches, helper calls with affine args>
        }
        printf("gen checksum %d\\n", acc);
    }

Index expressions are affine in the enclosing iterators (configurable
coefficient/stride ranges, optional negative coefficients normalized to
a non-negative range, optional frame-coefficient "streaming" windows).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.gen.profiles import GENERATOR_VERSION, GenProfile

#: Array id 0 is always the ``input[]`` buffer staged by ``read_samples``
#: (load-only; the builder never stores through it).
INPUT_ARRAY = 0

#: Element types the grammar draws from, with their MiniC spellings.
ELEM_TYPES = ("int", "short", "double")


# ---------------------------------------------------------------------------
# IR nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """An affine index over the enclosing loop stack (outermost first).

    ``coeffs[k]`` multiplies the iterator at stack position ``k`` (in
    ``main``, position 0 is the frame iterator). ``with_base`` adds the
    helper's ``base`` parameter (helper bodies only).
    """

    coeffs: tuple[int, ...]
    const: int
    with_base: bool = False


@dataclass(frozen=True)
class Load:
    """``array[index]`` read."""

    array: int
    index: Affine


@dataclass(frozen=True)
class IterVal:
    """``scale * i<depth> + offset`` — an iterator-valued operand."""

    pos: int  # loop-stack position
    scale: int
    offset: int


@dataclass(frozen=True)
class ConstVal:
    value: int


@dataclass(frozen=True)
class BinVal:
    """``left op right`` over :class:`Load`/:class:`IterVal`/:class:`ConstVal`.

    ``%`` and ``/`` only ever appear with a positive constant right
    operand (the builder never divides by data).
    """

    op: str
    left: "Value"
    right: "Value"


Value = Load | IterVal | ConstVal | BinVal


@dataclass
class Store:
    """``array[index] = value;`` (``self_read`` spells the value as
    ``array[index] + value`` — the fill-once/write-back reuse idiom)."""

    array: int
    index: Affine
    value: Value
    self_read: bool = False


@dataclass
class Reduce:
    """``acc += value;`` — the scalar reduction feeding the checksum."""

    value: Value


@dataclass
class Nest:
    """``for (i<pos> = 0; i<pos> < bound; i<pos> += step) { body }``"""

    bound: int
    step: int
    body: list["Stmt"] = field(default_factory=list)

    @property
    def max_value(self) -> int:
        return ((self.bound - 1) // self.step) * self.step

    @property
    def iterations(self) -> int:
        return (self.bound + self.step - 1) // self.step


@dataclass
class Branch:
    """``if (input[index] % mod == rhs) { then } else { els }`` — the
    condition reads the seeded input ensemble, so it is data-dependent
    (never statically constant) by construction."""

    index: Affine
    mod: int
    op: str  # "==" or "!="
    rhs: int
    then: list["Stmt"] = field(default_factory=list)
    els: list["Stmt"] = field(default_factory=list)


@dataclass
class CallStmt:
    """``helper<helper>(arg);`` with an affine argument."""

    helper: int
    arg: Affine


Stmt = Store | Reduce | Nest | Branch | CallStmt


@dataclass
class GenProgram:
    """The generated program, pre-render: everything the source is a
    pure function of (plus the profile)."""

    seed: int
    profile: str
    #: Element type per array id (id 0 = ``input``, always ``int``).
    elem_types: list[str]
    #: Helper bodies, by helper id; their loop stacks have no frame slot.
    helpers: list[list[Stmt]]
    #: Statements inside the frame loop of ``main``.
    main: list[Stmt]


class GenError(Exception):
    """A validity invariant of the generated IR failed."""


def gen_name(profile: str, seed: int) -> str:
    """Registry spec of one generated program (``gen:<profile>:<seed>``)."""
    return f"gen:{profile}:{seed}"


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


@dataclass
class _LoopFrame:
    """One open loop while building: the iterator's maximum value."""

    max_value: int
    is_frame: bool = False


class _Builder:
    """One seeded construction pass; all state is deterministic."""

    def __init__(self, seed: int, profile: GenProfile):
        self.profile = profile
        self.seed = seed
        # String seeding hashes the text (stable across versions), so the
        # stream depends on the version/profile/seed triple and nothing
        # else.
        self.rng = random.Random(
            f"repro-gen-v{GENERATOR_VERSION}:{profile.name}:{seed}"
        )
        self.elem_types: list[str] = ["int"]  # id 0 = input
        #: Estimated traced accesses accumulated so far (budget pass).
        self.cost = 0
        #: Per-helper estimated accesses for one invocation.
        self.helper_cost: list[int] = []
        self.helpers: list[list[Stmt]] = []
        self._reduce_seen = False
        self._input_seen = False

    # -- primitive draws ------------------------------------------------

    def _randint(self, bounds: tuple[int, int]) -> int:
        return self.rng.randint(bounds[0], bounds[1])

    def _pick_elem_type(self) -> str:
        if self.rng.random() < self.profile.p_wide_types:
            return "short" if self.rng.random() < 0.6 else "double"
        return "int"

    def _data_array(self) -> int:
        """A non-input array id (store targets; most load sources)."""
        return self.rng.randrange(1, len(self.elem_types))

    def _load_array(self, max_array: int) -> int:
        """A load source below ``max_array``; ~1 in 4 loads (and every
        load when no data array qualifies) reads the input ensemble.

        The bound is the value-growth invariant: a store to array ``k``
        only loads arrays ``< k``, so data dependences form a DAG and no
        multiplicative recurrence can blow values up across frames.
        """
        if max_array <= 1 or self.rng.random() < 0.25:
            return INPUT_ARRAY
        return self.rng.randrange(1, max_array)

    # -- affine indices -------------------------------------------------

    def _interval(self, coeffs: tuple[int, ...], const: int,
                  stack: list[_LoopFrame]) -> tuple[int, int]:
        lo = hi = const
        for coeff, frame in zip(coeffs, stack):
            term = coeff * frame.max_value
            lo += min(0, term)
            hi += max(0, term)
        return lo, hi

    def _affine(self, stack: list[_LoopFrame],
                with_base: bool = False,
                elems_cap: int | None = None) -> Affine:
        """A normalized affine index: lo >= 0, hi under the size cap."""
        profile = self.profile
        cap = (profile.max_array_elems if elems_cap is None else elems_cap)
        coeffs = []
        for frame in stack:
            if frame.is_frame:
                coeffs.append(0)  # streaming term decided below
                continue
            coeff = self._randint(profile.coef)
            if coeff and self.rng.random() < profile.p_negative_coef:
                coeff = -coeff
            coeffs.append(coeff)
        const = self._randint(profile.const)
        # Mostly-zero coefficient draws degenerate to scalar-like refs;
        # keep most references iterator-carried via the innermost loop.
        if stack and not any(coeffs) and self.rng.random() < 0.8:
            coeffs[-1] = self.rng.randint(1, max(1, profile.coef[1]))
        # Normalize: the minimum over the iteration box must be >= 0.
        lo, hi = self._interval(tuple(coeffs), const, stack)
        if lo < 0:
            const -= lo
            hi -= lo
        # Optional streaming window: the frame iterator advances the
        # whole inner footprint once per frame.
        frame_pos = next(
            (k for k, frame in enumerate(stack) if frame.is_frame), None)
        if (frame_pos is not None
                and self.rng.random() < profile.p_frame_coef):
            span = hi + 1 + self.rng.randint(0, 2)
            frame_max = stack[frame_pos].max_value
            if hi + span * frame_max < cap:
                coeffs[frame_pos] = span
                hi += span * frame_max
        # Size-cap clamp: zero the largest surviving term until we fit.
        while hi >= cap:
            terms = [abs(coeff) * frame.max_value
                     for coeff, frame in zip(coeffs, stack)]
            if not any(terms):
                const = self.rng.randrange(cap)
                break
            worst = max(range(len(terms)), key=lambda k: terms[k])
            coeffs[worst] = 0
            lo, hi = self._interval(tuple(coeffs), const, stack)
            if lo < 0:
                const -= lo
                hi -= lo
        return Affine(tuple(coeffs), const, with_base)

    # -- values ----------------------------------------------------------

    def _leaf(self, stack: list[_LoopFrame], in_helper: bool,
              max_array: int) -> Value:
        roll = self.rng.random()
        if roll < 0.5:
            array = self._load_array(max_array)
            if array == INPUT_ARRAY:
                self._input_seen = True
                return Load(array, self._affine(
                    stack, False, self.profile.input_len))
            with_base = in_helper and self.rng.random() < 0.5
            cap = (self.profile.max_array_elems // 4
                   if with_base else None)
            return Load(array, self._affine(stack, with_base, cap))
        if roll < 0.75 and stack:
            pos = len(stack) - 1
            return IterVal(pos, self.rng.randint(1, 3),
                           self.rng.randint(0, 5))
        return ConstVal(self.rng.randint(1, 9))

    def _value(self, stack: list[_LoopFrame], in_helper: bool,
               max_array: int) -> Value:
        left = self._leaf(stack, in_helper, max_array)
        roll = self.rng.random()
        if roll < 0.45:
            return left
        if roll < 0.6 and isinstance(left, (Load, IterVal)):
            # Scale down through a positive constant (never by data;
            # no % on double-typed loads — it is not defined for them).
            is_double = (isinstance(left, Load)
                         and self.elem_types[left.array] == "double")
            op = ("/" if is_double or self.rng.random() < 0.5 else "%")
            return BinVal(op, left, ConstVal(self.rng.randint(2, 8)))
        op = ("+", "-", "*")[self.rng.randrange(3)]
        if op == "*":
            # Multiplication never takes a load on the right: together
            # with the array-DAG load bound this keeps every stored
            # value polynomially bounded (no doubling recurrences, no
            # double overflow to inf, no runaway bigints).
            if stack and self.rng.random() < 0.6:
                right: Value = IterVal(len(stack) - 1,
                                       self.rng.randint(1, 2),
                                       self.rng.randint(0, 3))
            else:
                right = ConstVal(self.rng.randint(2, 9))
            return BinVal(op, left, right)
        return BinVal(op, left, self._leaf(stack, in_helper, max_array))

    def _value_cost(self, value: Value) -> int:
        if isinstance(value, Load):
            return 1
        if isinstance(value, BinVal):
            return self._value_cost(value.left) + self._value_cost(value.right)
        return 0

    # -- statements ------------------------------------------------------

    def _iterations(self, stack: list[_LoopFrame]) -> int:
        total = 1
        for frame in stack:
            total *= frame.max_value + 1 if frame.is_frame else 1
        return total

    def _store(self, stack: list[_LoopFrame], in_helper: bool) -> Store:
        array = self._data_array()
        with_base = in_helper and self.rng.random() < 0.6
        # Helper stores stay under half the size cap even without a
        # base term: _force_base_use may add one after the fact, and
        # call arguments are capped at a quarter of the size cap, so
        # base + index always fits.
        cap = (self.profile.max_array_elems // 4 if with_base
               else self.profile.max_array_elems // 2 if in_helper
               else None)
        index = self._affine(stack, with_base, cap)
        # Loads in the stored value come from strictly lower-numbered
        # arrays (self_read adds the additive read-modify-write idiom).
        value = self._value(stack, in_helper, array)
        self_read = self.rng.random() < 0.3
        return Store(array, index, value, self_read)

    def _reduce(self, stack: list[_LoopFrame], in_helper: bool) -> Reduce:
        self._reduce_seen = True
        return Reduce(self._value(stack, in_helper, len(self.elem_types)))

    def _branch(self, stack: list[_LoopFrame], depth: int,
                iters: int, in_helper: bool,
                branch_depth: int) -> Branch:
        self._input_seen = True
        index = self._affine(stack, False, self.profile.input_len)
        mod = self.rng.randint(2, 4)
        node = Branch(index, mod,
                      "==" if self.rng.random() < 0.7 else "!=",
                      self.rng.randrange(mod))
        node.then = self._block(stack, depth, iters, in_helper,
                                min_stmts=1, branch_depth=branch_depth + 1)
        if self.rng.random() < 0.5:
            node.els = self._block(stack, depth, iters, in_helper,
                                   min_stmts=1,
                                   branch_depth=branch_depth + 1)
        return node

    def _call(self, stack: list[_LoopFrame]) -> CallStmt:
        helper = self.rng.randrange(len(self.helpers))
        arg = self._affine(stack, False, self.profile.max_array_elems // 4)
        return CallStmt(helper, arg)

    def _nest(self, stack: list[_LoopFrame], depth: int,
              iters: int, in_helper: bool) -> Nest:
        profile = self.profile
        step = self._randint(profile.step)
        trips = self._randint(profile.trip)
        node = Nest(bound=trips * step, step=step)
        stack.append(_LoopFrame(node.max_value))
        node.body = self._block(stack, depth + 1,
                                iters * node.iterations, in_helper,
                                min_stmts=1)
        stack.pop()
        return node

    def _block(self, stack: list[_LoopFrame], depth: int, iters: int,
               in_helper: bool, min_stmts: int = 0,
               branch_depth: int = 0) -> list[Stmt]:
        profile = self.profile
        count = max(min_stmts, self._randint(profile.block_stmts))
        stmts: list[Stmt] = []
        for _ in range(count):
            if self.cost >= profile.access_budget and len(stmts) >= min_stmts:
                break
            # Weighted category pick over *enabled* categories only: a
            # disabled category's mass falls to the plain-store default,
            # never to its neighbour (a cascading gate once made nested
            # branches supercritical and recursion ran away).
            choices: list[tuple[str, float]] = []
            if depth < profile.max_depth:
                choices.append(("nest", profile.p_nest))
            if depth > 0 and branch_depth < 2:
                choices.append(("branch", profile.p_branch))
            if not in_helper and self.helpers:
                choices.append(("call", profile.p_call))
            choices.append(("reduce", profile.p_reduce))
            roll = self.rng.random()
            kind = "store"
            cum = 0.0
            for name, weight in choices:
                cum += weight
                if roll < cum:
                    kind = name
                    break
            if kind == "nest":
                stmts.append(self._nest(stack, depth, iters, in_helper))
            elif kind == "branch":
                stmts.append(self._branch(stack, depth, iters, in_helper,
                                          branch_depth))
                self.cost += iters  # the condition load
            elif kind == "call":
                call = self._call(stack)
                stmts.append(call)
                self.cost += iters * max(1, self.helper_cost[call.helper])
            elif kind == "reduce":
                node = self._reduce(stack, in_helper)
                stmts.append(node)
                self.cost += iters * self._value_cost(node.value)
            else:
                store = self._store(stack, in_helper)
                stmts.append(store)
                self.cost += iters * (
                    1 + self._value_cost(store.value)
                    + (1 if store.self_read else 0))
        return stmts

    # -- top level -------------------------------------------------------

    def _force_base_use(self, body: list[Stmt]) -> bool:
        """Helpers must actually consume ``base`` (the linter flags
        unused parameters); rewrite the first access if none does."""
        for stmt in body:
            if isinstance(stmt, Store):
                if stmt.index.with_base:
                    return True
                stmt.index = Affine(stmt.index.coeffs, stmt.index.const,
                                    True)
                return True
            if isinstance(stmt, Nest):
                if self._force_base_use(stmt.body):
                    return True
            if isinstance(stmt, Branch):
                if self._force_base_use(stmt.then):
                    return True
                if self._force_base_use(stmt.els):
                    return True
        return False

    def build(self) -> GenProgram:
        profile = self.profile
        for _ in range(self._randint(profile.arrays)):
            self.elem_types.append(self._pick_elem_type())

        for _ in range(self._randint(profile.helpers)):
            before = self.cost
            self.cost = 0
            stack: list[_LoopFrame] = []
            body = self._nest(stack, 1, 1, in_helper=True)
            per_call = max(1, self.cost)
            self.cost = before
            helper_body: list[Stmt] = [body]
            if not self._force_base_use(helper_body):
                continue  # degenerate (reductions only): drop it
            self.helpers.append(helper_body)
            self.helper_cost.append(per_call)

        frame = _LoopFrame(profile.reps - 1, is_frame=True)
        stack = [frame]
        main = self._block(stack, 0, profile.reps, in_helper=False,
                           min_stmts=2)
        if not self._reduce_seen:
            main.append(self._reduce(stack, in_helper=False))
        if not self._input_seen:
            # Tie every program to the input ensemble so the scenario
            # matrix (alt distributions) is never vacuous.
            index = self._affine(stack, False, profile.input_len)
            main.append(Reduce(BinVal("%", Load(INPUT_ARRAY, index),
                                      ConstVal(7))))
        return GenProgram(self.seed, profile.name, self.elem_types,
                          self.helpers, main)


def build_ir(seed: int, profile: GenProfile) -> GenProgram:
    """Deterministically construct the IR of ``gen:<profile>:<seed>``."""
    return _Builder(seed, profile).build()
