"""Top-level FORAY-GEN pipeline — the public API most users want.

* :func:`extract_foray_model` — Phase I on MiniC source (annotate, profile,
  analyze, purge) returning the FORAY model.
* :func:`run_workload` — Phase I plus the static baseline and all
  table metrics for one workload.
* :func:`run_suite` — the full mini-MiBench evaluation (Tables I–III).
* :func:`full_flow` — Phases I+II: extract the model, then run the SPM
  reuse analysis / buffer allocation and emit the transformed model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.census import LoopCensus, loop_census
from repro.analysis.coverage import (
    ForayFormCoverage,
    MemoryBehavior,
    table2_coverage,
    table3_behavior,
)
from repro.foray.emitter import emit_model
from repro.foray.extractor import ForayExtractor
from repro.foray.filters import FilterConfig
from repro.foray.model import ForayModel
from repro.sim.machine import CompiledProgram, RunResult, compile_program, run_compiled
from repro.spm.allocator import Allocation
from repro.spm.energy import EnergyModel
from repro.spm.explore import best_allocation
from repro.spm.transform import transform_model
from repro.staticfar.detector import StaticAnalysisResult, detect


@dataclass
class ExtractionResult:
    """Phase I output."""

    model: ForayModel
    compiled: CompiledProgram
    run_result: RunResult
    extractor: ForayExtractor

    @property
    def foray_source(self) -> str:
        """The FORAY model rendered as C text (paper Figures 2/4d)."""
        return emit_model(self.model)


def extract_foray_model(
    source: str,
    filter_config: FilterConfig | None = None,
    entry: str = "main",
    max_steps: int = 200_000_000,
) -> ExtractionResult:
    """Run Phase I (FORAY-GEN) on MiniC source text.

    The extractor is attached as a live trace sink (the paper's
    constant-space online mode).
    """
    compiled = compile_program(source)
    extractor = ForayExtractor(compiled.checkpoint_map, filter_config)
    run_result = run_compiled(compiled, sinks=(extractor,), entry=entry,
                              max_steps=max_steps)
    return ExtractionResult(extractor.finish(), compiled, run_result, extractor)


@dataclass
class WorkloadReport:
    """Phase I results plus all paper metrics for one workload."""

    name: str
    extraction: ExtractionResult
    static_result: StaticAnalysisResult
    census: LoopCensus
    table2: ForayFormCoverage
    table3: MemoryBehavior

    @property
    def model(self) -> ForayModel:
        return self.extraction.model


def run_workload(
    name: str,
    source: str,
    filter_config: FilterConfig | None = None,
    max_steps: int = 200_000_000,
) -> WorkloadReport:
    """Phase I + static baseline + Tables I/II/III metrics for one program."""
    extraction = extract_foray_model(source, filter_config, max_steps=max_steps)
    static_result = detect(extraction.compiled.program)
    census = loop_census(name, source, extraction.extractor.executed_loops())
    table2 = table2_coverage(name, extraction.model, static_result)
    table3 = table3_behavior(name, extraction.model)
    return WorkloadReport(name, extraction, static_result, census, table2, table3)


def run_suite(
    names: tuple[str, ...] | None = None,
    filter_config: FilterConfig | None = None,
) -> list[WorkloadReport]:
    """Run the full mini-MiBench suite (the paper's six benchmarks)."""
    from repro.workloads.registry import get_workload, workload_names

    reports = []
    for name in names or workload_names():
        workload = get_workload(name)
        reports.append(run_workload(workload.name, workload.source, filter_config))
    return reports


@dataclass
class FullFlowResult:
    """Phases I+II: model extraction plus SPM optimization."""

    report: WorkloadReport
    allocation: Allocation
    transformed_source: str
    energy_model: EnergyModel = field(default_factory=EnergyModel)

    @property
    def energy_saving_nj(self) -> float:
        return self.allocation.total_benefit_nj


def full_flow(
    name: str,
    source: str,
    spm_bytes: int = 4096,
    filter_config: FilterConfig | None = None,
    energy_model: EnergyModel | None = None,
) -> FullFlowResult:
    """The complete design flow of the paper's Figure 3 (Phases I and II).

    Phase III (back-annotating the transformed model into the legacy code)
    is manual by design in the paper; the transformed model text returned
    here is the input a designer would use for it.
    """
    energy_model = energy_model or EnergyModel()
    report = run_workload(name, source, filter_config)
    allocation = best_allocation(report.model, spm_bytes, energy_model)
    transformed = transform_model(allocation)
    return FullFlowResult(report, allocation, transformed, energy_model)
