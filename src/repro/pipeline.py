"""Top-level FORAY-GEN pipeline — the public API most users want.

The flow is organised as a registry of named stages, executed in order::

    compile → instrument → simulate → extract → analyze →
    analyze-static → validate → optimize → hierarchy

* **compile** — parse + semantic analysis of the MiniC source;
* **instrument** — checkpoint annotation (paper Algorithm 1, step 1);
* **simulate** — execute the program on the selected engine with the
  FORAY extractor attached as a live trace sink (the paper's
  constant-space online mode);
* **extract** — finalize the loop tree and purge the model (steps 2–4);
* **analyze** — static baseline plus the Table I–III metrics;
* **analyze-static** — the compile-time FORAY model plus the
  static-vs-dynamic differential oracle (off by default);
* **validate** — replay the workload's other input scenarios against the
  extracted model (cross-input stability; off by default);
* **optimize** — Phase II SPM reuse analysis / buffer allocation;
* **hierarchy** — cache co-simulation: pure cache vs SPM+cache over the
  streaming :class:`~repro.cachesim.sink.CacheSink` (off by default).

:class:`PipelineConfig` selects the execution engine (``bytecode`` or
``ast``), the suite parallelism (``jobs``) and whether the content-hash
artifact cache is consulted. The classic entry points are thin
compositions over the stages:

* :func:`extract_foray_model` — stages through **extract**, returning the
  FORAY model.
* :func:`run_workload` — through **analyze** for one workload.
* :func:`run_suite` — the full mini-MiBench evaluation (Tables I–III),
  optionally fanned out over worker processes with ``jobs=N``.
* :func:`full_flow` — through **optimize**, emitting the transformed model.
* :func:`validate_workload` / :func:`validate_suite` — the cross-input
  scenario matrix: every ``(workload × scenario)`` cell replays one
  scenario's trace against the profile-scenario model, fanned out over
  the same worker-process machinery.
* :func:`hier_suite` — the ``(workload × scenario × cache-config)``
  hierarchy matrix: every cell co-simulates a pure cache against
  SPM+cache through streaming sinks, fanned out and persisted the same
  way.

Compiled programs and extraction results are memoized in an in-process
content-hash cache (keyed by source text and the exact run configuration);
pass ``cache=False`` / ``--no-cache`` to bypass it. When
``PipelineConfig.cache_dir`` is set, the in-memory caches become the L1
tier over a disk-backed, content-addressed :class:`~repro.store.ArtifactStore`
(L2) shared across processes — ``_fan_out`` workers and repeat CLI
invocations then serve compilation, simulation, extraction, sweep and
validation artifacts from disk instead of recomputing them.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.analysis.census import LoopCensus, loop_census
from repro.cachesim.model import CacheConfig, CacheHierarchy
from repro.cachesim.report import HierarchyReport, build_hierarchy_report
from repro.cachesim.sink import CacheSink, allocation_intervals
from repro.analysis.coverage import (
    ForayFormCoverage,
    MemoryBehavior,
    table2_coverage,
    table3_behavior,
)
from repro.foray.emitter import emit_model
from repro.foray.extractor import ForayExtractor
from repro.foray.filters import FilterConfig
from repro.foray.model import ForayModel
from repro.lang.lint import Finding, lint_source
from repro.foray.validate import (
    ScenarioValidation,
    ValidationReport,
    ValidationSink,
    WorkloadValidation,
)
from repro.sim.inputs import InputSpec
from repro.sim.machine import (
    DEFAULT_ENGINE,
    DEFAULT_TRACE_BLOCK,
    CompiledProgram,
    EngineConfig,
    RunResult,
    compile_program,
    run_compiled,
)
from repro.spm.allocator import Allocation, AllocatorPolicy, allocate_graph
from repro.spm.energy import EnergyModel
from repro.spm.explore import (
    DEFAULT_CAPACITIES,
    ExplorationPoint,
    explore,
)
from repro.spm.graph import ReuseGraph
from repro.spm.transform import transform_model
from repro.sim.interpreter import RunStats
from repro.staticfar.analyze import analyze_static
from repro.staticfar.detector import StaticAnalysisResult, detect
from repro.staticfar.model import StaticForayModel
from repro.staticfar.oracle import OracleReport, compare_models
from repro.store import ArtifactStore

DEFAULT_MAX_STEPS = 200_000_000


@dataclass(frozen=True)
class SpmConfig:
    """Phase II knobs: capacity, allocator policy, energy overrides."""

    #: SPM capacity used by the single-capacity optimize stage.
    spm_bytes: int = 4096
    #: Capacity ladder swept when ``sweep`` is enabled.
    capacities: tuple[int, ...] = DEFAULT_CAPACITIES
    #: Allocator policy name (see :class:`AllocatorPolicy`).
    allocator: str = AllocatorPolicy.DP.value
    #: Per-access energy numbers (override to model other technologies).
    energy: EnergyModel = EnergyModel()
    #: Run the capacity sweep in the optimize stage (cached).
    sweep: bool = False


@dataclass(frozen=True)
class ValidationConfig:
    """Scenario-matrix knobs for the ``validate`` stage.

    ``scenarios=None`` replays every scenario the workload declares;
    ``profile=None`` extracts the model on the workload's first (nominal)
    scenario. ``threshold`` is the minimum acceptable cross-input overall
    accuracy gated by ``WorkloadValidation.passes`` (the CLI exit code).
    """

    enabled: bool = False
    scenarios: tuple[str, ...] | None = None
    profile: str | None = None
    #: Truncate the scenario set to its first N entries (CLI --scenarios).
    max_scenarios: int | None = None
    threshold: float = 0.0


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache-hierarchy co-simulation knobs for the ``hierarchy`` stage.

    ``sweep`` adds extra cache configurations to every matrix cell (the
    cache-config axis of the (workload x scenario x cache-config)
    evaluation matrix); ``max_scenarios`` widens the scenario axis to a
    workload's first N declared input scenarios (default: the nominal
    profiling scenario only).
    """

    enabled: bool = False
    cache: CacheConfig = CacheConfig()
    sweep: tuple[CacheConfig, ...] = ()
    max_scenarios: int | None = None

    def __post_init__(self) -> None:
        if self.max_scenarios is not None and self.max_scenarios < 1:
            raise ValueError(
                "hierarchy max_scenarios must be >= 1 (None = nominal "
                f"scenario only), got {self.max_scenarios}"
            )

    def configs(self) -> tuple[CacheConfig, ...]:
        """The cache configurations one cell sweeps, deduplicated in
        declaration order (the base config first)."""
        out: list[CacheConfig] = []
        for config in (self.cache, *self.sweep):
            if config not in out:
                out.append(config)
        return tuple(out)


@dataclass(frozen=True)
class PipelineConfig:
    """Cross-cutting knobs for the staged pipeline."""

    engine: str = DEFAULT_ENGINE
    jobs: int = 1
    cache: bool = True
    #: Root of the disk-backed artifact store (L2 under the in-memory
    #: caches); ``None`` keeps the caches in-process only. The directory
    #: is shared safely across concurrent processes.
    cache_dir: str | None = None
    entry: str = "main"
    max_steps: int = DEFAULT_MAX_STEPS
    #: Superinstruction fusion on the bytecode engine.
    fusion: bool = True
    #: Access-block size of the columnar trace protocol.
    trace_block: int = DEFAULT_TRACE_BLOCK
    filter_config: FilterConfig | None = None
    spm: SpmConfig = SpmConfig()
    #: Input ensemble for ``read_samples`` (None = the default spec).
    input: InputSpec | None = None
    validation: ValidationConfig = ValidationConfig()
    hierarchy: HierarchyConfig = HierarchyConfig()
    #: Run the ``analyze-static`` stage (compile-time model + oracle).
    static_analysis: bool = False
    #: Skip simulation when the static model proves itself complete and
    #: stats-exact; programs it cannot fully model fall back to the engine.
    static_fast_path: bool = False
    #: Structurally verify the lowered/fused bytecode before every run.
    verify_ir: bool = False

    def engine_config(self) -> EngineConfig:
        return EngineConfig(engine=self.engine, max_steps=self.max_steps,
                            fusion=self.fusion,
                            trace_block_size=self.trace_block,
                            input=self.input or InputSpec(),
                            verify_ir=self.verify_ir)


def _merge_config(
    config: PipelineConfig | None,
    filter_config: FilterConfig | None,
    max_steps: int | None = None,
    entry: str | None = None,
) -> PipelineConfig:
    """Fold classic per-call arguments into a :class:`PipelineConfig`.

    Only explicitly passed arguments (non-None) override the config.
    """
    merged = config or PipelineConfig()
    if filter_config is not None:
        merged = replace(merged, filter_config=filter_config)
    if max_steps is not None:
        merged = replace(merged, max_steps=max_steps)
    if entry is not None:
        merged = replace(merged, entry=entry)
    return merged


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------


class ArtifactCache:
    """A content-addressed in-process memo of pipeline artifacts.

    Bounded LRU: beyond ``max_entries`` the least-recently-*used* entry is
    evicted (extraction artifacts retain the full simulated run, so
    unbounded growth would hold one address space per key). Hits refresh
    recency — an entry that keeps getting hit survives interleaved misses.
    """

    def __init__(self, name: str, max_entries: int = 64):
        if max_entries <= 0:
            # put() would otherwise loop forever evicting from an empty
            # dict and die with StopIteration on next(iter({})).
            raise ValueError(
                f"cache {name!r}: max_entries must be positive, "
                f"got {max_entries}"
            )
        self.name = name
        self.max_entries = max_entries
        self._store: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        artifact = self._store.pop(key, None)
        if artifact is None:
            self.misses += 1
        else:
            # Re-insert at the back: dict order is the recency order.
            self._store[key] = artifact
            self.hits += 1
        return artifact

    def put(self, key: str, artifact) -> None:
        self._store.pop(key, None)  # overwrite refreshes recency too
        while len(self._store) >= self.max_entries:
            self._store.pop(next(iter(self._store)))
        self._store[key] = artifact

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)


#: Compiled (analyzed + instrumented + lazily lowered) programs by source.
compile_cache = ArtifactCache("compile")
#: Finished extraction results by (source, engine, filters, budget, entry).
extraction_cache = ArtifactCache("extraction")
#: Capacity-sweep results by (source, run config, ladder, policy, energy).
exploration_cache = ArtifactCache("exploration", max_entries=256)
#: Cross-input validation reports by (profile extraction, replay scenario).
validation_cache = ArtifactCache("validation", max_entries=256)
#: Cache-hierarchy comparison cells by (extraction, cache config, SPM knobs).
hierarchy_cache = ArtifactCache("hierarchy", max_entries=256)
#: Per-program fuzz outcomes by (generated source, check set, run config).
#: The generated source embeds the generator version + profile + seed in
#: its header, so these keys — like every downstream ``_compile_key`` —
#: roll over automatically when the generator changes.
fuzz_cache = ArtifactCache("fuzz", max_entries=4096)


def clear_caches() -> None:
    """Drop all memoized in-process pipeline artifacts (mainly for
    benchmarks). The disk store, when configured, is left intact — it is
    cleared explicitly (``repro cache clear``)."""
    compile_cache.clear()
    extraction_cache.clear()
    exploration_cache.clear()
    validation_cache.clear()
    hierarchy_cache.clear()
    fuzz_cache.clear()
    _profile_model_memo.clear()


#: One ArtifactStore instance per cache directory, shared by every
#: pipeline run in this process (fork-spawned workers inherit it; the
#: store resets its counters in the child).
_stores: dict[str, ArtifactStore] = {}


def store_for(config: PipelineConfig) -> ArtifactStore | None:
    """The disk store behind ``config``, or ``None`` when disabled
    (``cache=False`` bypasses the disk tier along with the memory one)."""
    if not config.cache or not config.cache_dir:
        return None
    store = _stores.get(config.cache_dir)
    if store is None:
        store = _stores[config.cache_dir] = ArtifactStore(config.cache_dir)
    return store


def persist_store_counters(config: PipelineConfig) -> None:
    """Publish this process's disk-cache counters (no-op without a store)."""
    store = store_for(config)
    if store is not None:
        store.persist_counters()


def _tiered_get(cache: ArtifactCache, key: str, config: PipelineConfig):
    """L1 (memory) lookup, falling back to L2 (disk); a disk hit is
    promoted into the memory cache."""
    artifact = cache.get(key)
    if artifact is not None:
        return artifact
    store = store_for(config)
    if store is None:
        return None
    artifact = store.get(cache.name, key)
    if artifact is not None:
        cache.put(key, artifact)
    return artifact


def _tiered_put(cache: ArtifactCache, key: str, artifact,
                config: PipelineConfig) -> None:
    """Memoize in memory and, when configured, persist to disk."""
    cache.put(key, artifact)
    store = store_for(config)
    if store is not None:
        store.put(cache.name, key, artifact)


def _content_key(*parts) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\0")
    return digest.hexdigest()


def _compile_key(source: str) -> str:
    return _content_key("compile", source)


def _extraction_key(source: str, config: PipelineConfig) -> str:
    # fusion/trace_block cannot change the extracted model (the parity
    # tests pin that down), but they are part of the producing engine's
    # identity: keying on them keeps warm artifacts from one trace
    # protocol from masking a defect in the other.
    return _content_key(
        "extract",
        source,
        config.engine,
        config.fusion,
        config.trace_block,
        config.entry,
        config.max_steps,
        config.filter_config or FilterConfig(),
        config.input or InputSpec(),
        # The static fast path produces a provably identical artifact,
        # but keeping the namespaces apart means a fast-path defect can
        # never serve a stale model to a simulation-backed run.
        config.static_fast_path,
    )


def normalize_ladder(capacities: tuple[int, ...]) -> tuple[int, ...]:
    """Canonical capacity-ladder form: sorted and deduplicated, so
    equivalent ladders share one exploration-cache entry."""
    return tuple(sorted(set(capacities)))


def _resolve_energy(
    energy: EnergyModel | None, config: PipelineConfig
) -> EnergyModel:
    """Canonical energy model for cache keying: ``None`` means the
    config's model. Keys are built from the resolved *value*, so
    ``energy=None`` and spelling the same model out explicitly (e.g. an
    explicit default ``EnergyModel()`` under a default config) land on
    one cache entry instead of duplicating identical sweeps."""
    return config.spm.energy if energy is None else energy


def exploration_key(
    source: str,
    config: PipelineConfig,
    capacities: tuple[int, ...],
    policy: str,
    energy: EnergyModel | None,
) -> str:
    """Cache key of one workload's capacity sweep."""
    return _content_key(
        "explore",
        _extraction_key(source, config),
        normalize_ladder(capacities),
        policy,
        _resolve_energy(energy, config),
    )


def cached_exploration(
    source: str,
    config: PipelineConfig,
    model: ForayModel,
    capacities: tuple[int, ...] | None = None,
    policy: "AllocatorPolicy | str | None" = None,
    energy: EnergyModel | None = None,
    graph: ReuseGraph | None = None,
) -> tuple["ExplorationPoint", ...]:
    """Memoized capacity sweep of one workload's model.

    ``None`` arguments fall back to ``config.spm``. The cached artifact is
    a tuple — it is shared across callers, so it must not be mutable
    through a returned reference.
    """
    spm_config = config.spm
    capacities = normalize_ladder(capacities if capacities is not None
                                  else spm_config.capacities)
    policy = AllocatorPolicy(policy if policy is not None
                             else spm_config.allocator)
    energy = _resolve_energy(energy, config)
    key = exploration_key(source, config, capacities, policy.value, energy)
    points = (_tiered_get(exploration_cache, key, config)
              if config.cache else None)
    if points is None:
        points = tuple(explore(model, capacities, energy, policy,
                               graph=graph))
        if config.cache:
            _tiered_put(exploration_cache, key, points, config)
    return points


# ---------------------------------------------------------------------------
# Stage registry
# ---------------------------------------------------------------------------


class StaticExtractor:
    """Duck-typed stand-in for :class:`ForayExtractor` on the static
    fast path: the downstream stages only call ``finish()`` and
    ``executed_loops()``, and both answers were computed at compile
    time."""

    def __init__(self, static: StaticForayModel):
        self.static = static

    def executed_loops(self) -> dict[int, str]:
        return dict(self.static.executed_loops)

    def finish(self) -> ForayModel:
        return self.static.foray_model()


@dataclass
class PipelineContext:
    """Mutable state threaded through the stages of one pipeline run."""

    source: str
    config: PipelineConfig
    name: str = "<anonymous>"
    #: Per-call overrides of the config's SPM settings (None = use config).
    spm_bytes: int | None = None
    energy_model: EnergyModel | None = None

    # Artifacts, filled in by the stages.
    compiled: CompiledProgram | None = None
    extractor: "ForayExtractor | StaticExtractor | None" = None
    run_result: RunResult | None = None
    extraction: "ExtractionResult | None" = None
    report: "WorkloadReport | None" = None
    static_model: StaticForayModel | None = None
    oracle: OracleReport | None = None
    validation: WorkloadValidation | None = None
    flow: "FullFlowResult | None" = None
    hierarchy: tuple[HierarchyReport, ...] | None = None


@dataclass(frozen=True)
class Stage:
    """One named step of the pipeline."""

    name: str
    func: Callable[[PipelineContext], None]
    description: str


#: Registered stages, in execution order.
STAGES: dict[str, Stage] = {}


def register_stage(name: str, description: str):
    def decorator(func: Callable[[PipelineContext], None]):
        STAGES[name] = Stage(name, func, description)
        return func

    return decorator


def stage_names() -> tuple[str, ...]:
    """The registered stage names, in execution order."""
    return tuple(STAGES)


def run_stages(ctx: PipelineContext, upto: str) -> PipelineContext:
    """Run the registered stages in order, stopping after ``upto``."""
    if upto not in STAGES:
        raise KeyError(f"unknown stage {upto!r}; known: {stage_names()}")
    for stage in STAGES.values():
        stage.func(ctx)
        if stage.name == upto:
            break
    return ctx


@register_stage("compile", "parse + semantic analysis")
def _stage_compile(ctx: PipelineContext) -> None:
    if ctx.compiled is not None:
        return
    key = _compile_key(ctx.source)
    if ctx.config.cache:
        cached = _tiered_get(compile_cache, key, ctx.config)
        if cached is not None:
            ctx.compiled = cached  # already instrumented; skips both stages
            return
    # compile_program also runs the instrument pass; the separate stage
    # below exists so callers can observe/extend the boundary.
    ctx.compiled = compile_program(ctx.source, annotate=False)


@register_stage("instrument", "checkpoint annotation (Algorithm 1 step 1)")
def _stage_instrument(ctx: PipelineContext) -> None:
    assert ctx.compiled is not None
    if ctx.compiled.is_instrumented:
        return  # cache hit delivered an instrumented program
    from repro.instrument.checkpoints import instrument

    ctx.compiled.checkpoint_map = instrument(ctx.compiled.program)
    if ctx.config.cache:
        _tiered_put(compile_cache, _compile_key(ctx.source), ctx.compiled,
                    ctx.config)


@register_stage("simulate", "profile on the selected engine (online sink)")
def _stage_simulate(ctx: PipelineContext) -> None:
    config = ctx.config
    if config.cache:
        cached = _tiered_get(extraction_cache,
                             _extraction_key(ctx.source, config), config)
        if cached is not None:
            ctx.extraction = cached
            ctx.extractor = cached.extractor
            ctx.run_result = cached.run_result
            ctx.compiled = cached.compiled
            return
    assert ctx.compiled is not None
    if config.static_fast_path:
        static = analyze_static(ctx.compiled.program, config.filter_config,
                                name=ctx.name, entry=config.entry)
        ctx.static_model = static
        if static.fast_path_ok:
            # The compile-time model is provably complete and stats-exact:
            # hand the downstream stages a zero-step "run" whose artifacts
            # are byte-identical to a simulation's.
            ctx.extractor = StaticExtractor(static)
            ctx.run_result = RunResult(0, "", RunStats(), None)
            return
    ctx.extractor = ForayExtractor(ctx.compiled.checkpoint_map,
                                   config.filter_config)
    ctx.run_result = run_compiled(
        ctx.compiled,
        sinks=(ctx.extractor,),
        entry=config.entry,
        config=config.engine_config(),
    )


@register_stage("extract", "finalize + purge the FORAY model (steps 2-4)")
def _stage_extract(ctx: PipelineContext) -> None:
    if ctx.extraction is not None:
        return
    assert ctx.extractor is not None and ctx.run_result is not None
    assert ctx.compiled is not None
    ctx.extraction = ExtractionResult(
        ctx.extractor.finish(), ctx.compiled, ctx.run_result, ctx.extractor
    )
    if ctx.config.cache:
        _tiered_put(extraction_cache,
                    _extraction_key(ctx.source, ctx.config),
                    ctx.extraction, ctx.config)


@register_stage("analyze", "static baseline + Tables I-III metrics")
def _stage_analyze(ctx: PipelineContext) -> None:
    assert ctx.extraction is not None
    extraction = ctx.extraction
    static_result = detect(extraction.compiled.program)
    census = loop_census(ctx.name, ctx.source,
                         extraction.extractor.executed_loops())
    table2 = table2_coverage(ctx.name, extraction.model, static_result)
    table3 = table3_behavior(ctx.name, extraction.model)
    ctx.report = WorkloadReport(ctx.name, extraction, static_result, census,
                                table2, table3)


@register_stage("analyze-static",
                "compile-time FORAY model + differential oracle")
def _stage_analyze_static(ctx: PipelineContext) -> None:
    """Compute the static FORAY model and diff it against the dynamic one.

    No-ops unless ``config.static_analysis`` (or the fast path already
    produced a static model in the simulate stage). The oracle compares
    the two models reference-by-reference and checks DP-allocation parity
    over the matched set; disagreement is reported, not raised — callers
    (the ``repro static`` command, the tests) decide how loud to be.
    """
    config = ctx.config
    if not (config.static_analysis or ctx.static_model is not None):
        return
    assert ctx.report is not None
    if ctx.static_model is None:
        ctx.static_model = analyze_static(
            ctx.report.extraction.compiled.program, config.filter_config,
            detector_result=ctx.report.static_result, name=ctx.name,
            entry=config.entry)
    ctx.oracle = compare_models(ctx.report.model, ctx.static_model,
                                detector=ctx.report.static_result,
                                name=ctx.name)


@register_stage("validate", "cross-input scenario-matrix validation")
def _stage_validate(ctx: PipelineContext) -> None:
    """Replay the workload's other input scenarios against the model.

    No-ops unless ``config.validation.enabled`` and ``ctx.name`` resolves
    to a registered workload that declares a scenario matrix (ad-hoc
    sources have no scenarios to replay). The context source must match
    a declared scenario of the named workload — a modified source under
    a registry name would otherwise be silently "validated" against the
    pristine registry program.
    """
    config = ctx.config
    if not config.validation.enabled:
        return
    from repro.workloads.registry import find_workload

    workload = find_workload(ctx.name)
    if workload is None or len(workload.scenarios) < 2:
        return
    if not any(
        workload.source_for(scenario) == ctx.source
        for scenario in workload.scenarios
    ):
        return
    ctx.validation = validate_workload(ctx.name, config=config)


@register_stage("optimize", "Phase II: reuse graph, SPM allocation, sweep")
def _stage_optimize(ctx: PipelineContext) -> None:
    assert ctx.report is not None
    spm_config = ctx.config.spm
    energy_model = ctx.energy_model or spm_config.energy
    policy = AllocatorPolicy(spm_config.allocator)
    capacity = (ctx.spm_bytes if ctx.spm_bytes is not None
                else spm_config.spm_bytes)
    graph = ReuseGraph.from_model(ctx.report.model, energy_model)
    allocation = allocate_graph(graph, capacity, policy)
    transformed = transform_model(allocation)
    exploration: tuple[ExplorationPoint, ...] | None = None
    if spm_config.sweep:
        exploration = cached_exploration(ctx.source, ctx.config,
                                         ctx.report.model, policy=policy,
                                         energy=energy_model, graph=graph)
    ctx.flow = FullFlowResult(ctx.report, allocation, transformed,
                              energy_model, graph=graph,
                              exploration=exploration,
                              validation=ctx.validation)


@register_stage("hierarchy", "cache co-simulation: pure cache vs SPM+cache")
def _stage_hierarchy(ctx: PipelineContext) -> None:
    """Simulate the cache hierarchy for this run's source (gated).

    No-ops unless ``config.hierarchy.enabled``. Reuses the optimize
    stage's model and allocation, so the only extra work is a single
    engine run with two streaming cache sinks per swept configuration
    attached — and none at all when every cell is already in the
    hierarchy artifact cache.
    """
    config = ctx.config
    if not config.hierarchy.enabled:
        return
    assert ctx.report is not None and ctx.flow is not None
    reports = hierarchy_for_configs(
        ctx.name, ctx.source, config, config.hierarchy.configs(),
        scenario=_hier_scenario_label(ctx.name, ctx.source, config),
        spm_bytes=ctx.spm_bytes,
        energy=ctx.energy_model,
        model=ctx.report.model,
        allocation=ctx.flow.allocation,
    )
    ctx.hierarchy = reports
    ctx.flow.hierarchy = reports


# ---------------------------------------------------------------------------
# Results and classic entry points
# ---------------------------------------------------------------------------


@dataclass
class ExtractionResult:
    """Phase I output."""

    model: ForayModel
    compiled: CompiledProgram
    run_result: RunResult
    extractor: ForayExtractor

    @property
    def foray_source(self) -> str:
        """The FORAY model rendered as C text (paper Figures 2/4d)."""
        return emit_model(self.model)


def extract_foray_model(
    source: str,
    filter_config: FilterConfig | None = None,
    entry: str | None = None,
    max_steps: int | None = None,
    config: PipelineConfig | None = None,
) -> ExtractionResult:
    """Run Phase I (FORAY-GEN) on MiniC source text.

    The extractor is attached as a live trace sink (the paper's
    constant-space online mode).
    """
    merged = _merge_config(config, filter_config, max_steps, entry)
    ctx = run_stages(PipelineContext(source, merged), upto="extract")
    assert ctx.extraction is not None
    return ctx.extraction


@dataclass
class WorkloadReport:
    """Phase I results plus all paper metrics for one workload."""

    name: str
    extraction: ExtractionResult
    static_result: StaticAnalysisResult
    census: LoopCensus
    table2: ForayFormCoverage
    table3: MemoryBehavior

    @property
    def model(self) -> ForayModel:
        return self.extraction.model


def run_workload(
    name: str,
    source: str,
    filter_config: FilterConfig | None = None,
    max_steps: int | None = None,
    config: PipelineConfig | None = None,
) -> WorkloadReport:
    """Phase I + static baseline + Tables I/II/III metrics for one program."""
    merged = _merge_config(config, filter_config, max_steps)
    ctx = run_stages(PipelineContext(source, merged, name=name),
                     upto="analyze")
    assert ctx.report is not None
    return ctx.report


def _suite_worker(args: tuple[str, str, PipelineConfig]) -> WorkloadReport:
    name, source, config = args
    report = run_workload(name, source, config=config)
    # Worker processes exit via os._exit (no atexit), so each task flushes
    # this process's cumulative disk-cache counters itself.
    persist_store_counters(config)
    return report


def _fan_out(tasks: list, worker: Callable, jobs: int) -> list:
    """Run ``worker`` over ``tasks``, optionally in worker processes.

    The shared fan-out machinery behind :func:`run_suite` and
    :func:`validate_suite`: ``jobs=0`` uses the CPU count, the pool is
    capped at the task count, and results come back in task order.
    """
    if jobs == 0:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(tasks)))
    if jobs == 1:
        return [worker(task) for task in tasks]

    import multiprocessing

    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        mp_context = multiprocessing.get_context()
    with ProcessPoolExecutor(max_workers=jobs,
                             mp_context=mp_context) as executor:
        return list(executor.map(worker, tasks))


def run_suite(
    names: tuple[str, ...] | None = None,
    filter_config: FilterConfig | None = None,
    jobs: int | None = None,
    config: PipelineConfig | None = None,
) -> list[WorkloadReport]:
    """Run the full mini-MiBench suite (the paper's six plus mpeg2).

    ``jobs > 1`` fans the workloads out over that many worker processes
    (``jobs=0`` uses the CPU count); results come back in suite order
    either way. ``jobs=None`` (the default) defers to ``config.jobs``;
    an explicit argument — including ``jobs=1`` to force a serial run —
    always wins over the config.
    """
    from repro.workloads.registry import get_workload, workload_names

    merged = _merge_config(config, filter_config)
    if jobs is None:
        jobs = merged.jobs
    selected = [get_workload(name) for name in (names or workload_names())]
    tasks = [(w.name, w.source, merged) for w in selected]
    return _fan_out(tasks, _suite_worker, jobs)


# ---------------------------------------------------------------------------
# Static analysis: the (workload x scenario) differential-oracle matrix
# ---------------------------------------------------------------------------


@dataclass
class StaticReport:
    """Static coverage plus the oracle outcome for one (workload, scenario)."""

    name: str
    scenario: str
    static: StaticForayModel
    oracle: OracleReport

    @property
    def ok(self) -> bool:
        return self.oracle.ok


def static_workload(
    name: str,
    source: str,
    config: PipelineConfig | None = None,
    scenario: str = "",
) -> StaticReport:
    """Static model + differential oracle for one program and input."""
    merged = replace(config or PipelineConfig(), static_analysis=True)
    ctx = run_stages(PipelineContext(source, merged, name=name),
                     upto="analyze-static")
    assert ctx.static_model is not None and ctx.oracle is not None
    ctx.oracle.scenario = scenario
    return StaticReport(name, scenario, ctx.static_model, ctx.oracle)


def _static_cell_worker(
    args: tuple[str, str | None, PipelineConfig]
) -> StaticReport:
    """One (workload x scenario) oracle cell, fan-out ready. ``None``
    stands for the nominal source of a workload with no scenario matrix."""
    name, scenario_name, config = args
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    if scenario_name is None:
        source, cell_config, label = workload.source, config, "-"
    else:
        scenario = workload.scenario(scenario_name)
        source = workload.source_for(scenario)
        cell_config = _scenario_config(config, scenario)
        label = scenario.name
    report = static_workload(name, source, config=cell_config,
                             scenario=label)
    persist_store_counters(config)  # see _suite_worker
    return report


def static_suite(
    names: tuple[str, ...] | None = None,
    jobs: int | None = None,
    config: PipelineConfig | None = None,
) -> list[StaticReport]:
    """The full static matrix: every (workload x scenario) cell runs the
    compile-time analyzer against the dynamic extraction and diffs the
    two models. Cells fan out over the shared worker-process machinery;
    results come back in matrix order (workloads in suite order, then
    scenarios)."""
    from repro.workloads.registry import get_workload, workload_names

    config = config or PipelineConfig()
    if jobs is None:
        jobs = config.jobs
    tasks: list[tuple[str, str | None, PipelineConfig]] = []
    for workload in (get_workload(n) for n in (names or workload_names())):
        if workload.scenarios:
            tasks.extend((workload.name, scenario_name, config)
                         for scenario_name in workload.scenario_names())
        else:
            tasks.append((workload.name, None, config))
    return _fan_out(tasks, _static_cell_worker, jobs)


@dataclass(frozen=True)
class LintReport:
    """Linter findings for one (workload, scenario) source."""

    workload: str
    scenario: str
    findings: tuple[Finding, ...]

    @property
    def label(self) -> str:
        if self.scenario:
            return f"{self.workload}/{self.scenario}"
        return self.workload

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")


def lint_suite(names: tuple[str, ...] | None = None) -> list[LintReport]:
    """Run the MiniC linter over every (workload x scenario) source.

    Pure front-end work (no simulation), so cells run serially; the
    whole suite takes well under a second."""
    from repro.workloads.registry import get_workload, workload_names

    reports: list[LintReport] = []
    for workload in (get_workload(n) for n in (names or workload_names())):
        scenario_names = workload.scenario_names() or (None,)
        for scenario_name in scenario_names:
            if scenario_name is None:
                source, label = workload.source, workload.name
            else:
                source = workload.source_for(scenario_name)
                label = f"{workload.name}/{scenario_name}"
            reports.append(LintReport(
                workload.name, scenario_name or "",
                tuple(lint_source(source, label))))
    return reports


@dataclass
class FullFlowResult:
    """Phases I+II: model extraction plus SPM optimization."""

    report: WorkloadReport
    allocation: Allocation
    transformed_source: str
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    #: The reuse-graph IR the allocation was selected over.
    graph: ReuseGraph | None = None
    #: Capacity sweep (only when ``SpmConfig.sweep`` is enabled).
    exploration: tuple[ExplorationPoint, ...] | None = None
    #: Cross-input stability (only when ``ValidationConfig.enabled``).
    validation: WorkloadValidation | None = None
    #: Cache co-simulation cells (only when ``HierarchyConfig.enabled``).
    hierarchy: tuple[HierarchyReport, ...] | None = None

    @property
    def energy_saving_nj(self) -> float:
        return self.allocation.total_benefit_nj


def full_flow(
    name: str,
    source: str,
    spm_bytes: int | None = None,
    filter_config: FilterConfig | None = None,
    energy_model: EnergyModel | None = None,
    config: PipelineConfig | None = None,
) -> FullFlowResult:
    """The complete design flow of the paper's Figure 3 (Phases I and II).

    ``spm_bytes`` overrides ``config.spm.spm_bytes`` when given (default
    4096 via :class:`SpmConfig`). Phase III (back-annotating the
    transformed model into the legacy code) is manual by design in the
    paper; the transformed model text returned here is the input a
    designer would use for it.
    """
    merged = _merge_config(config, filter_config)
    ctx = PipelineContext(source, merged, name=name, spm_bytes=spm_bytes,
                          energy_model=energy_model)
    # The hierarchy stage no-ops unless config.hierarchy.enabled, so a
    # default flow still ends at the optimize artifacts.
    run_stages(ctx, upto="hierarchy")
    assert ctx.flow is not None
    return ctx.flow


# ---------------------------------------------------------------------------
# Cross-input validation: the (workload x scenario) matrix
# ---------------------------------------------------------------------------


def _scenario_config(config: PipelineConfig, scenario) -> PipelineConfig:
    """The pipeline config that runs one input scenario."""
    return replace(config, input=scenario.input)


def _cached_compiled(source: str, config: PipelineConfig) -> CompiledProgram:
    """Compile + instrument ``source`` through the registered stages
    (one code path decides instrumentation and compile-cache policy)."""
    ctx = run_stages(PipelineContext(source, config), upto="instrument")
    assert ctx.compiled is not None
    return ctx.compiled


def validation_key(
    workload, profile, scenario, config: PipelineConfig
) -> str:
    """Cache key of one scenario-matrix cell (profile model x replay)."""
    profile_config = _scenario_config(config, profile)
    return _content_key(
        "validate",
        _extraction_key(workload.source_for(profile), profile_config),
        workload.source_for(scenario),
        scenario.input,
    )


def _replay_scenario(
    workload, profile, scenario, model: ForayModel, config: PipelineConfig
) -> ValidationReport:
    """Replay one scenario's trace against ``model``, scored online.

    The replay attaches a :class:`ValidationSink` directly to the engine
    (batched sink protocol), so the scenario trace is never materialized;
    finished reports are memoized in ``validation_cache``.
    """
    key = validation_key(workload, profile, scenario, config)
    if config.cache:
        cached = _tiered_get(validation_cache, key, config)
        if cached is not None:
            return cached
    compiled = _cached_compiled(workload.source_for(scenario), config)
    sink = ValidationSink(model, compiled.checkpoint_map)
    scenario_config = _scenario_config(config, scenario)
    run_compiled(
        compiled,
        sinks=(sink,),
        entry=config.entry,
        config=scenario_config.engine_config(),
    )
    report = sink.finish()
    if config.cache:
        _tiered_put(validation_cache, key, report, config)
    return report


def _select_scenarios(workload, validation: ValidationConfig) -> list:
    """The scenario subset one validation run covers, profile first."""
    if len(workload.scenarios) < 2:
        raise ValueError(
            f"workload {workload.name!r} declares no scenario matrix; "
            "cross-input validation needs at least two scenarios"
        )
    if validation.max_scenarios is not None and validation.max_scenarios < 2:
        raise ValueError(
            "max_scenarios must be >= 2 (the profile scenario plus at "
            f"least one replay), got {validation.max_scenarios}"
        )
    scenarios = list(workload.scenarios)
    if validation.scenarios:
        scenarios = [workload.scenario(name) for name in validation.scenarios]
    profile_name = validation.profile or scenarios[0].name
    try:
        profile = workload.scenario(profile_name)
    except KeyError:
        raise ValueError(
            f"workload {workload.name!r} declares no scenario "
            f"{profile_name!r} to profile on; known: "
            f"{', '.join(workload.scenario_names())}"
        ) from None
    scenarios = [profile] + [s for s in scenarios if s.name != profile.name]
    if validation.max_scenarios is not None:
        scenarios = scenarios[: validation.max_scenarios]
    return scenarios


#: Run-scoped memo of profile models by extraction key. The profile
#: extraction (a full simulation) is the expensive half of a matrix cell
#: and every cell of one workload needs the same model, so it is kept
#: even under ``cache=False``: bypassing the artifact caches means "do
#: not reuse artifacts across runs", not "re-simulate the identical
#: profile once per scenario". Each fan-out worker process fills its own.
_profile_model_memo: dict[str, ForayModel] = {}
_PROFILE_MEMO_LIMIT = 16


def _profile_model(workload, profile, config: PipelineConfig) -> ForayModel:
    """The FORAY model extracted on the profile scenario (memoized)."""
    profile_config = _scenario_config(config, profile)
    key = _extraction_key(workload.source_for(profile), profile_config)
    model = _profile_model_memo.get(key)
    if model is None:
        extraction = extract_foray_model(
            workload.source_for(profile), config=profile_config
        )
        model = extraction.model
        while len(_profile_model_memo) >= _PROFILE_MEMO_LIMIT:
            _profile_model_memo.pop(next(iter(_profile_model_memo)))
        _profile_model_memo[key] = model
    return model


def _validation_cell_worker(
    args: tuple[str, str, str, PipelineConfig]
) -> ScenarioValidation:
    """One (workload x scenario) matrix cell, self-contained for fan-out."""
    name, profile_name, scenario_name, config = args
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    profile = workload.scenario(profile_name)
    scenario = workload.scenario(scenario_name)
    model = _profile_model(workload, profile, config)
    report = _replay_scenario(workload, profile, scenario, model, config)
    persist_store_counters(config)  # see _suite_worker
    return ScenarioValidation(name, scenario.name, profile.name,
                              config.engine, report)


def _assemble_validation(
    name: str, profile_name: str, scenario_count: int,
    cells: list[ScenarioValidation],
) -> WorkloadValidation:
    self_cells = [c for c in cells if c.scenario == profile_name]
    cross = tuple(c for c in cells if c.scenario != profile_name)
    return WorkloadValidation(
        workload=name,
        profile=profile_name,
        scenario_count=scenario_count,
        self_validation=self_cells[0].report,
        cross=cross,
    )


def validate_workload(
    name: str,
    config: PipelineConfig | None = None,
) -> WorkloadValidation:
    """Cross-input validation of one workload over its scenario matrix.

    Extracts the model on the profile scenario (``config.validation``
    selects it; the nominal scenario by default), replays every other
    scenario's trace against it, and scores per-reference accuracy. The
    profile scenario itself is replayed too — the self-validation row on
    which full references must score 100%.
    """
    config = config or PipelineConfig()
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    scenarios = _select_scenarios(workload, config.validation)
    profile = scenarios[0]
    cells = [
        _validation_cell_worker((name, profile.name, scenario.name, config))
        for scenario in scenarios
    ]
    return _assemble_validation(name, profile.name, len(scenarios), cells)


def validate_suite(
    names: tuple[str, ...] | None = None,
    jobs: int | None = None,
    config: PipelineConfig | None = None,
) -> list[WorkloadValidation]:
    """The full scenario matrix: every (workload x scenario) cell.

    Cells — not workloads — are the unit of fan-out, so ``jobs=N`` load-
    balances the ~3x-larger matrix over the same worker-process machinery
    ``run_suite`` uses; results come back grouped per workload, in suite
    order. Like ``run_suite``, ``jobs=None`` defers to ``config.jobs``
    and an explicit argument (``jobs=1`` included) always wins.
    """
    from repro.workloads.registry import get_workload, workload_names

    config = config or PipelineConfig()
    if jobs is None:
        jobs = config.jobs
    selected = [get_workload(n) for n in (names or workload_names())]
    plans: list[tuple[str, str, int]] = []
    tasks: list[tuple[str, str, str, PipelineConfig]] = []
    for workload in selected:
        scenarios = _select_scenarios(workload, config.validation)
        profile = scenarios[0]
        plans.append((workload.name, profile.name, len(scenarios)))
        tasks.extend(
            (workload.name, profile.name, scenario.name, config)
            for scenario in scenarios
        )
    cells = _fan_out(tasks, _validation_cell_worker, jobs)

    results: list[WorkloadValidation] = []
    offset = 0
    for name, profile_name, count in plans:
        group = cells[offset : offset + count]
        offset += count
        results.append(
            _assemble_validation(name, profile_name, count, group)
        )
    return results


# ---------------------------------------------------------------------------
# Cache-hierarchy co-simulation: the (workload x scenario x config) matrix
# ---------------------------------------------------------------------------


def hierarchy_key(
    name: str,
    scenario: str,
    source: str,
    config: PipelineConfig,
    cache_config: CacheConfig,
    spm_bytes: int,
    policy: str,
    energy: EnergyModel,
) -> str:
    """Cache key of one hierarchy matrix cell.

    Built on the extraction key (source, engine, input ensemble, filter
    budget), so a cell is recomputed exactly when its underlying profile
    would be — plus every knob that shapes the comparison itself.
    """
    return _content_key(
        "hier",
        name,
        scenario,
        _extraction_key(source, config),
        cache_config,
        spm_bytes,
        policy,
        energy,
    )


def hierarchy_for_configs(
    name: str,
    source: str,
    config: PipelineConfig,
    cache_configs: tuple[CacheConfig, ...],
    scenario: str = "-",
    spm_bytes: int | None = None,
    energy: EnergyModel | None = None,
    model: ForayModel | None = None,
    allocation: Allocation | None = None,
) -> tuple[HierarchyReport, ...]:
    """Hierarchy matrix cells for one (source, scenario): pure cache vs
    SPM+cache under every configuration in ``cache_configs``.

    Extracts (or reuses) the FORAY model, selects an SPM allocation at
    ``spm_bytes`` under ``config.spm``'s policy, and runs the program
    **once** with two streaming :class:`CacheSink`\\ s per *uncached*
    configuration attached — the engine run (the expensive part) is
    shared across the whole cache-config sweep. The trace is never
    materialized; finished cells are memoized per configuration in
    ``hierarchy_cache`` (and the disk store, when configured), so a
    rerun only simulates when at least one configuration is cold.
    """
    energy = _resolve_energy(energy, config)
    policy = AllocatorPolicy(config.spm.allocator)
    capacity = (spm_bytes if spm_bytes is not None
                else config.spm.spm_bytes)
    reports: dict[CacheConfig, HierarchyReport] = {}
    missing: list[tuple[CacheConfig, str]] = []
    for cache_config in cache_configs:
        if cache_config in reports or any(
            cache_config == pending for pending, _key in missing
        ):
            continue  # duplicate spec: one cell serves all mentions
        key = hierarchy_key(name, scenario, source, config, cache_config,
                            capacity, policy.value, energy)
        if config.cache:
            cached = _tiered_get(hierarchy_cache, key, config)
            if cached is not None:
                reports[cache_config] = cached
                continue
        missing.append((cache_config, key))
    if missing:
        if allocation is None:
            if model is None:
                model = extract_foray_model(source, config=config).model
            graph = ReuseGraph.from_model(model, energy)
            allocation = allocate_graph(graph, capacity, policy)
        intervals = allocation_intervals(allocation)
        sink_pairs = [
            (CacheSink(CacheHierarchy(cache_config)),
             CacheSink(CacheHierarchy(cache_config), intervals))
            for cache_config, _key in missing
        ]
        compiled = _cached_compiled(source, config)
        run_compiled(
            compiled,
            sinks=tuple(sink for pair in sink_pairs for sink in pair),
            entry=config.entry,
            config=config.engine_config(),
        )
        for (cache_config, key), (pure, hybrid) in zip(missing, sink_pairs):
            report = build_hierarchy_report(
                name, scenario, cache_config, allocation,
                pure.finish(), hybrid.finish(), energy,
            )
            if config.cache:
                _tiered_put(hierarchy_cache, key, report, config)
            reports[cache_config] = report
    return tuple(reports[cache_config] for cache_config in cache_configs)


def hierarchy_for_source(
    name: str,
    source: str,
    config: PipelineConfig,
    cache_config: CacheConfig,
    scenario: str = "-",
    spm_bytes: int | None = None,
    energy: EnergyModel | None = None,
    model: ForayModel | None = None,
    allocation: Allocation | None = None,
) -> HierarchyReport:
    """Single-configuration convenience over
    :func:`hierarchy_for_configs`."""
    (report,) = hierarchy_for_configs(
        name, source, config, (cache_config,), scenario=scenario,
        spm_bytes=spm_bytes, energy=energy, model=model,
        allocation=allocation,
    )
    return report


def _hier_scenario_label(name: str, source: str,
                         config: PipelineConfig) -> str:
    """The scenario name behind a (source, input) pair, or ``"-"``.

    Resolving the label from content keeps the stage entry point
    (``full_flow`` on a registry workload's nominal source) and the
    ``hier_suite`` cell worker on the *same* cache/store entries — both
    label the nominal run ``"nominal"`` instead of splitting it across
    a ``"-"`` and a ``"nominal"`` key for identical simulations.
    """
    from repro.workloads.registry import find_workload

    workload = find_workload(name)
    if workload is None:
        return "-"
    wanted_input = config.input or InputSpec()
    for scenario in workload.scenarios:
        if (scenario.input == wanted_input
                and workload.source_for(scenario) == source):
            return scenario.name
    return "-"


def _hier_scenarios(workload, hierarchy: HierarchyConfig) -> list[str | None]:
    """The scenario-axis subset of one workload's matrix cells.

    ``None`` stands for "the nominal source with the config's input" —
    used for workloads that declare no scenario matrix. Declared
    scenarios are taken in order, the nominal profiling scenario first.
    """
    if not workload.scenarios:
        return [None]
    count = (1 if hierarchy.max_scenarios is None
             else hierarchy.max_scenarios)
    return list(workload.scenario_names()[:count])


def _hier_cell_worker(
    args: tuple[str, str | None, tuple[CacheConfig, ...], PipelineConfig]
) -> tuple[HierarchyReport, ...]:
    """One (workload x scenario) simulation group, fan-out ready.

    All swept cache configurations of the group ride a single engine
    run (see :func:`hierarchy_for_configs`), so grouping by scenario —
    not by individual config — is what keeps a sweep from re-simulating
    the same trace once per configuration.
    """
    name, scenario_name, cache_configs, config = args
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    if scenario_name is None:
        source, cell_config, label = workload.source, config, "-"
    else:
        scenario = workload.scenario(scenario_name)
        source = workload.source_for(scenario)
        cell_config = _scenario_config(config, scenario)
        label = scenario.name
    reports = hierarchy_for_configs(name, source, cell_config,
                                    cache_configs, scenario=label)
    persist_store_counters(config)  # see _suite_worker
    return reports


def hier_suite(
    names: tuple[str, ...] | None = None,
    jobs: int | None = None,
    config: PipelineConfig | None = None,
) -> list[HierarchyReport]:
    """The full hierarchy matrix: (workload x scenario x cache-config).

    (workload x scenario) groups are the unit of fan-out — ``jobs=N``
    load-balances them over the same worker-process machinery
    ``run_suite`` and ``validate_suite`` use, each group's cache-config
    sweep shares one engine run, and every finished cell is served from
    the hierarchy artifact store when warm (a repeat matrix performs
    zero simulations). Results come back flattened in matrix order:
    workloads in suite order, then scenarios, then cache configs.
    ``jobs=None`` defers to ``config.jobs``; an explicit argument
    (``jobs=1`` included) wins.
    """
    from repro.workloads.registry import get_workload, workload_names

    config = config or PipelineConfig()
    if jobs is None:
        jobs = config.jobs
    configs = config.hierarchy.configs()
    tasks: list[
        tuple[str, str | None, tuple[CacheConfig, ...], PipelineConfig]
    ] = []
    for workload in (get_workload(n) for n in (names or workload_names())):
        tasks.extend(
            (workload.name, scenario_name, configs, config)
            for scenario_name in _hier_scenarios(workload, config.hierarchy)
        )
    groups = _fan_out(tasks, _hier_cell_worker, jobs)
    return [report for group in groups for report in group]
