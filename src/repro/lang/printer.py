"""Pretty-printer: AST back to compilable MiniC source.

For instrumented programs (loops carrying checkpoint ids), the printer
emits paper-style ``CHECKPOINT(n);`` markers around each loop, reproducing
the annotated-source view of the paper's Figure 4(b).
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.ctypes_ import ArrayType, CType, PointerType

_INDENT = "    "

# Operator precedence used to decide where parentheses are needed.
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PRECEDENCE = 11
_POSTFIX_PRECEDENCE = 12
_ASSIGN_PRECEDENCE = 0


def type_prefix_suffix(ctype: CType) -> tuple[str, str]:
    """Split a type into declaration prefix and suffix around the name,
    e.g. ``int *a[10]`` → prefix ``int *``, suffix ``[10]``."""
    suffix = ""
    while isinstance(ctype, ArrayType):
        suffix += f"[{ctype.length}]"
        ctype = ctype.element
    prefix = str(ctype)
    if isinstance(ctype, PointerType):
        # str(PointerType) already ends with '*'.
        return prefix, suffix
    return prefix + " ", suffix


def format_declaration(ctype: CType, name: str) -> str:
    prefix, suffix = type_prefix_suffix(ctype)
    if not prefix.endswith((" ", "*")):
        prefix += " "
    return f"{prefix}{name}{suffix}"


class Printer:
    def __init__(self, show_checkpoints: bool = True):
        self._show_checkpoints = show_checkpoints
        self._lines: list[str] = []
        self._depth = 0

    # ------------------------------------------------------------------

    def print_program(self, program: ast.Program) -> str:
        self._lines = []
        for struct_def in program.struct_defs:
            self._emit_struct(struct_def)
            self._lines.append("")
        for decl_stmt in program.globals:
            for decl in decl_stmt.decls:
                self._line(self._format_one_decl(decl) + ";")
        if program.globals:
            self._lines.append("")
        for index, fn in enumerate(program.functions):
            if index:
                self._lines.append("")
            self._emit_function(fn)
        return "\n".join(self._lines) + "\n"

    # -- internals ------------------------------------------------------

    def _line(self, text: str) -> None:
        self._lines.append(_INDENT * self._depth + text if text else "")

    def _emit_struct(self, struct_def: ast.StructDef) -> None:
        st = struct_def.struct_type
        self._line(f"struct {st.tag} {{")
        self._depth += 1
        for member in st.members:
            self._line(format_declaration(member.ctype, member.name) + ";")
        self._depth -= 1
        self._line("};")

    def _emit_function(self, fn: ast.FunctionDef) -> None:
        params = ", ".join(
            format_declaration(p.ctype, p.name) for p in fn.params
        ) or "void"
        prefix, suffix = type_prefix_suffix(fn.return_type)
        assert not suffix, "function returning array is not valid C"
        if not prefix.endswith((" ", "*")):
            prefix += " "
        self._line(f"{prefix}{fn.name}({params}) {{")
        self._depth += 1
        for stmt in fn.body.stmts:
            self._emit_stmt(stmt)
        self._depth -= 1
        self._line("}")

    def _format_one_decl(self, decl: ast.VarDecl) -> str:
        text = format_declaration(decl.ctype, decl.name)
        if decl.init is not None:
            text += f" = {self._expr(decl.init)}"
        return text

    def _format_decl_stmt(self, stmt: ast.DeclStmt) -> str:
        """Single-line rendering, used for for-loop initializers."""
        decls = stmt.decls
        if len(decls) > 1 and all(d.ctype == decls[0].ctype for d in decls):
            prefix, suffix = type_prefix_suffix(decls[0].ctype)
            if not suffix:
                parts = []
                for decl in decls:
                    part = decl.name
                    if decl.init is not None:
                        part += f" = {self._expr(decl.init)}"
                    parts.append(part)
                if not prefix.endswith((" ", "*")):
                    prefix += " "
                return prefix + ", ".join(parts) + ";"
        return "; ".join(self._format_one_decl(decl) for decl in decls) + ";"

    def _emit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            # Block-level declarations print one per line so a parse/print
            # round trip is a fixed point.
            for decl in stmt.decls:
                self._line(self._format_one_decl(decl) + ";")
        elif isinstance(stmt, ast.ExprStmt):
            self._line(self._expr(stmt.expr) + ";")
        elif isinstance(stmt, ast.EmptyStmt):
            self._line(";")
        elif isinstance(stmt, ast.Block):
            self._line("{")
            self._depth += 1
            for inner in stmt.stmts:
                self._emit_stmt(inner)
            self._depth -= 1
            self._line("}")
        elif isinstance(stmt, ast.If):
            self._line(f"if ({self._expr(stmt.cond)})")
            self._emit_substmt(stmt.then_stmt)
            if stmt.else_stmt is not None:
                self._line("else")
                self._emit_substmt(stmt.else_stmt)
        elif isinstance(stmt, ast.For):
            self._emit_loop_header_checkpoint(stmt)
            init = ""
            if isinstance(stmt.init, ast.DeclStmt):
                init = self._format_decl_stmt(stmt.init)[:-1]
            elif isinstance(stmt.init, ast.ExprStmt):
                init = self._expr(stmt.init.expr)
            cond = self._expr(stmt.cond) if stmt.cond is not None else ""
            step = self._expr(stmt.step) if stmt.step is not None else ""
            self._line(f"for ({init}; {cond}; {step})")
            self._emit_loop_body(stmt)
        elif isinstance(stmt, ast.While):
            self._emit_loop_header_checkpoint(stmt)
            self._line(f"while ({self._expr(stmt.cond)})")
            self._emit_loop_body(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._emit_loop_header_checkpoint(stmt)
            self._line("do")
            self._emit_loop_body(stmt)
            self._line(f"while ({self._expr(stmt.cond)});")
        elif isinstance(stmt, ast.Return):
            if stmt.expr is None:
                self._line("return;")
            else:
                self._line(f"return {self._expr(stmt.expr)};")
        elif isinstance(stmt, ast.Break):
            self._line("break;")
        elif isinstance(stmt, ast.Continue):
            self._line("continue;")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot print {type(stmt).__name__}")

    def _emit_substmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._emit_stmt(stmt)
        else:
            self._depth += 1
            self._emit_stmt(stmt)
            self._depth -= 1

    def _emit_loop_header_checkpoint(self, loop: ast.Loop) -> None:
        if self._show_checkpoints and loop.is_instrumented:
            self._line(f"CHECKPOINT({loop.begin_id});  /* loop-begin */")

    def _emit_loop_body(self, loop: ast.Loop) -> None:
        if not (self._show_checkpoints and loop.is_instrumented):
            self._emit_substmt(loop.body)
            return
        self._line("{")
        self._depth += 1
        self._line(f"CHECKPOINT({loop.body_begin_id});  /* body-begin */")
        if isinstance(loop.body, ast.Block):
            for inner in loop.body.stmts:
                self._emit_stmt(inner)
        else:
            self._emit_stmt(loop.body)
        self._line(f"CHECKPOINT({loop.body_end_id});  /* body-end */")
        self._depth -= 1
        self._line("}")

    # -- expressions ------------------------------------------------------

    def _expr(self, expr: ast.Expr, parent_prec: int = -1) -> str:
        text, prec = self._expr_prec(expr)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_prec(self, expr: ast.Expr) -> tuple[str, int]:
        if isinstance(expr, ast.IntLiteral):
            return str(expr.value), _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.FloatLiteral):
            return repr(expr.value), _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.StringLiteral):
            escaped = (
                expr.value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
                .replace("\0", "\\0")
            )
            return f'"{escaped}"', _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Identifier):
            return expr.name, _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Unary):
            operand = self._expr(expr.operand, _UNARY_PRECEDENCE)
            if operand and operand[0] == expr.op and expr.op in "-+&":
                # Avoid "--x" / "++x" / "&&x" token merging.
                operand = f"({operand})"
            return f"{expr.op}{operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.IncDec):
            if expr.is_postfix:
                operand = self._expr(expr.operand, _POSTFIX_PRECEDENCE)
                return f"{operand}{expr.op}", _POSTFIX_PRECEDENCE
            operand = self._expr(expr.operand, _UNARY_PRECEDENCE)
            return f"{expr.op}{operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.Binary):
            prec = _PRECEDENCE[expr.op]
            left = self._expr(expr.left, prec)
            right = self._expr(expr.right, prec + 1)
            return f"{left} {expr.op} {right}", prec
        if isinstance(expr, ast.Assign):
            target = self._expr(expr.target, _UNARY_PRECEDENCE)
            value = self._expr(expr.value, _ASSIGN_PRECEDENCE)
            return f"{target} {expr.op}= {value}", _ASSIGN_PRECEDENCE
        if isinstance(expr, ast.Ternary):
            cond = self._expr(expr.cond, 1)
            then_expr = self._expr(expr.then_expr, _ASSIGN_PRECEDENCE)
            else_expr = self._expr(expr.else_expr, _ASSIGN_PRECEDENCE)
            return f"{cond} ? {then_expr} : {else_expr}", _ASSIGN_PRECEDENCE
        if isinstance(expr, ast.Call):
            args = ", ".join(self._expr(arg, _ASSIGN_PRECEDENCE) for arg in expr.args)
            if expr.name == "__init_list__":
                return f"{{{args}}}", _POSTFIX_PRECEDENCE
            return f"{expr.name}({args})", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Index):
            base = self._expr(expr.base, _POSTFIX_PRECEDENCE)
            return f"{base}[{self._expr(expr.index)}]", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Member):
            base = self._expr(expr.base, _POSTFIX_PRECEDENCE)
            sep = "->" if expr.is_arrow else "."
            return f"{base}{sep}{expr.name}", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Cast):
            operand = self._expr(expr.operand, _UNARY_PRECEDENCE)
            return f"({expr.target_type}){operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.SizeofType):
            return f"sizeof({expr.queried_type})", _UNARY_PRECEDENCE
        if isinstance(expr, ast.SizeofExpr):
            operand = self._expr(expr.operand, _UNARY_PRECEDENCE)
            return f"sizeof {operand}", _UNARY_PRECEDENCE
        raise TypeError(f"cannot print {type(expr).__name__}")  # pragma: no cover


def to_source(program: ast.Program, show_checkpoints: bool = True) -> str:
    """Render a program (optionally with checkpoint markers) as C source."""
    return Printer(show_checkpoints).print_program(program)
