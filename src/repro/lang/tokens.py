"""Token definitions for the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.errors import SourceLocation


class TokenKind(enum.Enum):
    """All token categories produced by the lexer."""

    # Literals and identifiers.
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    CHAR_LIT = "char_lit"
    STRING_LIT = "string_lit"
    IDENT = "ident"

    # Keywords.
    KW_INT = "int"
    KW_CHAR = "char"
    KW_SHORT = "short"
    KW_LONG = "long"
    KW_FLOAT = "float"
    KW_DOUBLE = "double"
    KW_VOID = "void"
    KW_UNSIGNED = "unsigned"
    KW_SIGNED = "signed"
    KW_STRUCT = "struct"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_SIZEOF = "sizeof"
    KW_CONST = "const"
    KW_STATIC = "static"

    # Punctuation / operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    QUESTION = "?"
    COLON = ":"
    ARROW = "->"
    DOT = "."
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LSHIFT = "<<"
    RSHIFT = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND_AND = "&&"
    OR_OR = "||"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    LSHIFT_ASSIGN = "<<="
    RSHIFT_ASSIGN = ">>="
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"

    EOF = "eof"


#: Mapping from keyword spelling to its token kind.
KEYWORDS: dict[str, TokenKind] = {
    "int": TokenKind.KW_INT,
    "char": TokenKind.KW_CHAR,
    "short": TokenKind.KW_SHORT,
    "long": TokenKind.KW_LONG,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_DOUBLE,
    "void": TokenKind.KW_VOID,
    "unsigned": TokenKind.KW_UNSIGNED,
    "signed": TokenKind.KW_SIGNED,
    "struct": TokenKind.KW_STRUCT,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "sizeof": TokenKind.KW_SIZEOF,
    "const": TokenKind.KW_CONST,
    "static": TokenKind.KW_STATIC,
}

#: Multi-character operators, longest first so the lexer can use greedy match.
MULTI_CHAR_OPERATORS: list[tuple[str, TokenKind]] = [
    ("<<=", TokenKind.LSHIFT_ASSIGN),
    (">>=", TokenKind.RSHIFT_ASSIGN),
    ("->", TokenKind.ARROW),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("<<", TokenKind.LSHIFT),
    (">>", TokenKind.RSHIFT),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
]

#: Single-character operators and punctuation.
SINGLE_CHAR_OPERATORS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "=": TokenKind.ASSIGN,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token.

    ``value`` carries the decoded payload for literals: ``int`` for integer
    and character literals, ``float`` for floating literals, ``str`` for
    string literals and identifiers.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r} @ {self.location})"
