"""Error types and source locations for the MiniC frontend.

Every diagnostic raised by the lexer, parser, semantic analyzer or
interpreter carries a :class:`SourceLocation` so that tooling built on top
of the frontend (instrumentation, the FORAY-GEN extractor, the static
baseline) can point back into the original program text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a MiniC source file (1-based line and column)."""

    line: int = 0
    column: int = 0
    filename: str = "<minic>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class MiniCError(Exception):
    """Base class for all MiniC frontend and runtime errors."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        self.message = message
        super().__init__(f"{self.location}: {message}")


class LexError(MiniCError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(MiniCError):
    """Raised when the parser encounters an unexpected token."""


class SemanticError(MiniCError):
    """Raised by the semantic analyzer (undeclared names, type errors...)."""


class MiniCRuntimeError(MiniCError):
    """Raised by the interpreter for runtime faults (bad memory access,
    division by zero, missing return value, stack overflow...)."""


class MemoryFault(MiniCRuntimeError):
    """Raised on an access to an unmapped simulated address."""
