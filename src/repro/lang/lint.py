"""MiniC semantic linter.

Lifts the bytecode-level dataflow framework (:mod:`repro.sim.dataflow`)
through the front end: each function body is lowered to a small
statement-level control-flow graph of *use*/*def* events over its
register-promoted scalars, and the generic worklist solver runs a
definite-assignment (must) analysis and a liveness (may) analysis over
it. Purely syntactic rules (constant conditions, static array bounds)
ride along on the same walk.

Rule codes are stable; tools may match on them:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
``L100``  error     source does not parse / fails semantic analysis
``L101``  error     variable may be used before initialization
``L102``  error     constant array index is out of bounds
``L201``  warning   dead store — assigned value is never read
``L202``  warning   unused variable, array or parameter
``L203``  warning   branch condition is a compile-time constant
``L204``  warning   loop condition is statically false (zero-trip loop)
``L205``  warning   constant-true loop with no break or return
========  ========  =====================================================

``L201`` exempts initializers at the declaration itself (``int i = 0;``
followed by a reassignment is accepted defensive style); only later
assignments and increments with an unread result are flagged. Globals
are externally visible state (they appear in traces and post-run dumps)
and are never flagged by ``L202``.

Entry points: :func:`lint_source` for a source string,
:func:`lint_program` for an analyzed :class:`~repro.lang.ast_nodes.Program`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast_nodes as ast
from repro.lang.ctypes_ import ArrayType, FloatType, IntType
from repro.lang.errors import MiniCError, SourceLocation
from repro.lang.semantics import Symbol, parse_and_analyze

__all__ = ["Finding", "SEVERITY", "RULES", "lint_program", "lint_source"]

#: Severity per rule code. ``error`` findings make ``repro lint`` exit
#: non-zero; ``warning`` findings do not.
SEVERITY: dict[str, str] = {
    "L100": "error",
    "L101": "error",
    "L102": "error",
    "L201": "warning",
    "L202": "warning",
    "L203": "warning",
    "L204": "warning",
    "L205": "warning",
}

#: One-line description per rule code (the README table is generated
#: from the same text).
RULES: dict[str, str] = {
    "L100": "source fails to parse or analyze",
    "L101": "variable may be used before initialization",
    "L102": "constant array index is out of bounds",
    "L201": "dead store: assigned value is never read",
    "L202": "unused variable, array or parameter",
    "L203": "branch condition is a compile-time constant",
    "L204": "loop condition is statically false (zero-trip loop)",
    "L205": "constant-true loop with no break or return",
}


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic."""

    rule: str
    severity: str
    message: str
    line: int
    column: int
    function: str

    def format(self, filename: str = "<minic>") -> str:
        where = f" [{self.function}]" if self.function else ""
        return (f"{filename}:{self.line}:{self.column}: "
                f"{self.severity} {self.rule}: {self.message}{where}")


def _finding(rule: str, message: str, location: SourceLocation | None,
             function: str) -> Finding:
    line = location.line if location is not None else 0
    column = location.column if location is not None else 0
    return Finding(rule, SEVERITY[rule], message, line, column, function)


# ---------------------------------------------------------------------------
# Constant folding (front-end mirror of the SCCP lattice's singleton case)
# ---------------------------------------------------------------------------


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_mod(a: int, b: int) -> int:
    return a - _trunc_div(a, b) * b


def const_value(expr: ast.Expr | None) -> int | float | None:
    """Fold ``expr`` to a compile-time constant, or ``None``.

    Handles literals, ``sizeof``, unary/binary arithmetic (with C
    truncating division), short-circuit ``&&``/``||``, casts and
    ternaries — the idioms that appear in branch conditions and array
    subscripts.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    if isinstance(expr, ast.SizeofType):
        return expr.queried_type.size
    if isinstance(expr, ast.SizeofExpr):
        ctype = expr.operand.ctype
        return ctype.size if ctype is not None else None
    if isinstance(expr, ast.Unary):
        value = const_value(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "!":
            return int(not value)
        if expr.op == "~" and isinstance(value, int):
            return ~value
        return None
    if isinstance(expr, ast.Cast):
        value = const_value(expr.operand)
        if value is None:
            return None
        target = expr.target_type
        if isinstance(target, IntType):
            return target.wrap(int(value))
        if isinstance(target, FloatType):
            return float(value)
        return None
    if isinstance(expr, ast.Ternary):
        cond = const_value(expr.cond)
        if cond is None:
            return None
        return const_value(expr.then_expr if cond else expr.else_expr)
    if isinstance(expr, ast.Binary):
        left = const_value(expr.left)
        if left is None:
            return None
        if expr.op == "&&":
            return 0 if not left else _as_bool(const_value(expr.right))
        if expr.op == "||":
            return 1 if left else _as_bool(const_value(expr.right))
        right = const_value(expr.right)
        if right is None:
            return None
        return _fold_binary(expr.op, left, right)
    return None


def _as_bool(value: int | float | None) -> int | None:
    return None if value is None else int(bool(value))


def _fold_binary(op: str, a: int | float,
                 b: int | float) -> int | float | None:
    both_int = isinstance(a, int) and isinstance(b, int)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            return None
        return _trunc_div(a, b) if both_int else a / b
    if op == "%":
        if not both_int or b == 0:
            return None
        return _trunc_mod(a, b)
    if op in ("<", "<=", ">", ">=", "==", "!="):
        table = {"<": a < b, "<=": a <= b, ">": a > b,
                 ">=": a >= b, "==": a == b, "!=": a != b}
        return int(table[op])
    if not both_int:
        return None
    if op == "<<":
        return a << b if 0 <= b < 64 else None
    if op == ">>":
        return a >> b if 0 <= b < 64 else None
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    return None


# ---------------------------------------------------------------------------
# Statement-level CFG of use/def events
# ---------------------------------------------------------------------------

_USE, _DEF, _NOP = 0, 1, 2


def _tracked(symbol: object) -> bool:
    """Scalars the flow analyses can reason about exactly.

    Register-promoted locals and parameters only: their address is never
    taken, so no store through a pointer or call can touch them behind
    the analysis' back — exactly the guarantee the bytecode layer
    encodes with ``Symbol.in_memory``.
    """
    return (isinstance(symbol, Symbol)
            and symbol.storage in ("local", "param")
            and not symbol.in_memory
            and symbol.ctype.is_scalar)


class _EventCfg:
    """Per-function CFG whose nodes are single use/def events.

    Built in source order with a *frontier* of dangling edges, so
    structured control flow (short-circuit operands included) lowers to
    plain successor lists the generic solver understands.
    """

    def __init__(self) -> None:
        self.kinds: list[int] = []
        self.syms: list[Symbol | None] = []
        self.sites: list[object | None] = []
        #: ``True`` for defs that are genuine stores (assignments and
        #: increments, not declaration initializers) — the L201 pool.
        self.is_store: list[bool] = []
        self.succs: list[list[int]] = []
        self.frontier: list[int] = []
        self._breaks: list[list[int]] = []
        self._continues: list[list[int]] = []
        self._emit(_NOP, None, None)  # entry node 0

    def _emit(self, kind: int, symbol: Symbol | None, site: object | None,
              is_store: bool = False) -> int:
        index = len(self.kinds)
        self.kinds.append(kind)
        self.syms.append(symbol)
        self.sites.append(site)
        self.is_store.append(is_store)
        self.succs.append([])
        for node in self.frontier:
            self.succs[node].append(index)
        self.frontier = [index]
        return index

    # -- expressions ------------------------------------------------------

    def uses(self, expr: ast.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Identifier):
            if _tracked(expr.symbol):
                self._emit(_USE, expr.symbol, expr)
        elif isinstance(expr, ast.Assign):
            self.uses(expr.value)
            self._lvalue(expr.target, read=bool(expr.op))
            target = expr.target
            if isinstance(target, ast.Identifier) and _tracked(target.symbol):
                self._emit(_DEF, target.symbol, expr, is_store=True)
        elif isinstance(expr, ast.IncDec):
            operand = expr.operand
            if isinstance(operand, ast.Identifier):
                if _tracked(operand.symbol):
                    self._emit(_USE, operand.symbol, operand)
                    self._emit(_DEF, operand.symbol, expr, is_store=True)
            else:
                self._lvalue(operand, read=True)
        elif isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            self.uses(expr.left)
            skip = list(self.frontier)
            self.uses(expr.right)
            self.frontier = self.frontier + skip
        elif isinstance(expr, ast.Ternary):
            self.uses(expr.cond)
            head = list(self.frontier)
            self.uses(expr.then_expr)
            taken = list(self.frontier)
            self.frontier = head
            self.uses(expr.else_expr)
            self.frontier = taken + self.frontier
        elif isinstance(expr, ast.SizeofExpr):
            pass  # operand is not evaluated
        else:
            for child in ast.children(expr):
                if isinstance(child, ast.Expr):
                    self.uses(child)

    def _lvalue(self, target: ast.Expr, read: bool) -> None:
        if isinstance(target, ast.Identifier):
            if read and _tracked(target.symbol):
                self._emit(_USE, target.symbol, target)
        elif isinstance(target, ast.Index):
            self.uses(target.base)
            self.uses(target.index)
        elif isinstance(target, ast.Member):
            self.uses(target.base)
        elif isinstance(target, ast.Unary):
            self.uses(target.operand)
        else:
            self.uses(target)

    # -- statements -------------------------------------------------------

    def build(self, stmt: ast.Stmt | None) -> None:
        if stmt is None or isinstance(stmt, ast.EmptyStmt):
            return
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self.build(inner)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    self.uses(decl.init)
                    if _tracked(decl.symbol):
                        self._emit(_DEF, decl.symbol, decl)
        elif isinstance(stmt, ast.ExprStmt):
            self.uses(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.uses(stmt.cond)
            head = list(self.frontier)
            self.build(stmt.then_stmt)
            taken = list(self.frontier)
            self.frontier = head
            if stmt.else_stmt is not None:
                self.build(stmt.else_stmt)
            self.frontier = taken + self.frontier
        elif isinstance(stmt, ast.While):
            head = self._emit(_NOP, None, None)
            self.uses(stmt.cond)
            exits = list(self.frontier)
            self._enter_loop()
            self.build(stmt.body)
            self._close_loop(back_to=head, continue_to=head)
            self.frontier = exits + self._breaks.pop()
        elif isinstance(stmt, ast.For):
            self.build(stmt.init)
            head = self._emit(_NOP, None, None)
            self.uses(stmt.cond)
            exits = list(self.frontier) if stmt.cond is not None else []
            self._enter_loop()
            self.build(stmt.body)
            self.frontier = self.frontier + self._continues.pop()
            self.uses(stmt.step)
            for node in self.frontier:
                self.succs[node].append(head)
            self.frontier = exits + self._breaks.pop()
        elif isinstance(stmt, ast.DoWhile):
            head = self._emit(_NOP, None, None)
            self._enter_loop()
            self.build(stmt.body)
            self.frontier = self.frontier + self._continues.pop()
            self.uses(stmt.cond)
            for node in self.frontier:
                self.succs[node].append(head)
            self.frontier = self.frontier + self._breaks.pop()
        elif isinstance(stmt, ast.Return):
            self.uses(stmt.expr)
            self.frontier = []
        elif isinstance(stmt, ast.Break):
            self._breaks[-1].extend(self.frontier)
            self.frontier = []
        elif isinstance(stmt, ast.Continue):
            self._continues[-1].extend(self.frontier)
            self.frontier = []
        else:  # pragma: no cover - statement grammar is closed
            raise TypeError(f"unhandled statement {type(stmt).__name__}")

    def _enter_loop(self) -> None:
        self._breaks.append([])
        self._continues.append([])

    def _close_loop(self, back_to: int, continue_to: int) -> None:
        for node in self.frontier:
            self.succs[node].append(back_to)
        for node in self._continues.pop():
            self.succs[node].append(continue_to)


# ---------------------------------------------------------------------------
# Flow-sensitive rules: L101 (definite assignment) and L201 (dead stores)
# ---------------------------------------------------------------------------


def _location_of(site: object | None) -> SourceLocation | None:
    return getattr(site, "location", None)


def _flow_findings(fn: ast.FunctionDef) -> list[Finding]:
    from repro.sim import dataflow

    cfg = _EventCfg()
    cfg.build(fn.body)

    slots: dict[Symbol, int] = {}
    for symbol in cfg.syms:
        if symbol is not None and symbol not in slots:
            slots[symbol] = len(slots)
    num_nodes = len(cfg.kinds)
    if not slots:
        return []
    full = (1 << len(slots)) - 1
    param_mask = 0
    for param in fn.params:
        if param.symbol in slots:
            param_mask |= 1 << slots[param.symbol]

    kinds, syms = cfg.kinds, cfg.syms

    def assigned_transfer(node: int, value: int) -> int:
        if kinds[node] == _DEF:
            return value | (1 << slots[syms[node]])
        return value

    assigned_in, _ = dataflow.solve(
        num_nodes, cfg.succs, forward=True, bottom=full,
        boundary=param_mask, transfer=assigned_transfer,
        join=lambda a, b: a & b)

    def live_transfer(node: int, value: int) -> int:
        kind = kinds[node]
        if kind == _USE:
            return value | (1 << slots[syms[node]])
        if kind == _DEF:
            return value & ~(1 << slots[syms[node]])
        return value

    live_after, _ = dataflow.solve(
        num_nodes, cfg.succs, forward=False, bottom=0, boundary=0,
        transfer=live_transfer, join=lambda a, b: a | b)

    findings: list[Finding] = []
    reported_uninit: set[Symbol] = set()
    for node in range(num_nodes):
        symbol = syms[node]
        if symbol is None:
            continue
        bit = 1 << slots[symbol]
        if (cfg.kinds[node] == _USE and not assigned_in[node] & bit
                and symbol not in reported_uninit):
            reported_uninit.add(symbol)
            findings.append(_finding(
                "L101",
                f"variable {symbol.name!r} may be used before "
                f"initialization",
                _location_of(cfg.sites[node]), fn.name))
        elif (cfg.kinds[node] == _DEF and cfg.is_store[node]
                and not live_after[node] & bit):
            findings.append(_finding(
                "L201",
                f"dead store: value assigned to {symbol.name!r} is "
                f"never read",
                _location_of(cfg.sites[node]), fn.name))
    return findings


# ---------------------------------------------------------------------------
# Syntactic rules: L102, L202, L203, L204, L205
# ---------------------------------------------------------------------------


def _collect_reads(node: object, reads: set[Symbol]) -> None:
    if isinstance(node, ast.Identifier):
        if isinstance(node.symbol, Symbol):
            reads.add(node.symbol)
        return
    if isinstance(node, ast.Assign):
        _collect_reads(node.value, reads)
        target = node.target
        if isinstance(target, ast.Identifier):
            if node.op and isinstance(target.symbol, Symbol):
                reads.add(target.symbol)  # compound assignment reads
        else:
            _collect_reads(target, reads)
        return
    for child in ast.children(node):
        _collect_reads(child, reads)


def _kind_word(symbol: Symbol) -> str:
    if symbol.storage == "param":
        return "parameter"
    if isinstance(symbol.ctype, ArrayType):
        return "array"
    return "variable"


def _unused_findings(fn: ast.FunctionDef) -> list[Finding]:
    reads: set[Symbol] = set()
    _collect_reads(fn.body, reads)
    findings: list[Finding] = []
    for param in fn.params:
        if isinstance(param.symbol, Symbol) and param.symbol not in reads:
            findings.append(_finding(
                "L202", f"unused parameter {param.name!r}",
                param.location, fn.name))
    for node in ast.walk(fn.body):
        if not isinstance(node, ast.DeclStmt):
            continue
        for decl in node.decls:
            symbol = decl.symbol
            if isinstance(symbol, Symbol) and symbol not in reads:
                findings.append(_finding(
                    "L202",
                    f"unused {_kind_word(symbol)} {decl.name!r}",
                    decl.location, fn.name))
    return findings


def _loop_has_direct_break(stmt: object) -> bool:
    if isinstance(stmt, ast.Break):
        return True
    if isinstance(stmt, ast.Loop):
        return False  # a break in a nested loop binds to that loop
    return any(_loop_has_direct_break(child) for child in ast.children(stmt))


def _loop_has_return(stmt: object) -> bool:
    return any(isinstance(node, ast.Return) for node in ast.walk(stmt))


def _syntactic_findings(fn: ast.FunctionDef) -> list[Finding]:
    findings = _unused_findings(fn)
    for node in ast.walk(fn.body):
        if isinstance(node, ast.Index):
            base_type = node.base.ctype
            index = const_value(node.index)
            if (isinstance(base_type, ArrayType)
                    and isinstance(index, int)
                    and not 0 <= index < base_type.length):
                findings.append(_finding(
                    "L102",
                    f"index {index} is out of bounds for "
                    f"{base_type} (valid: 0..{base_type.length - 1})",
                    node.location, fn.name))
        elif isinstance(node, (ast.If, ast.Ternary)):
            value = const_value(node.cond)
            if value is not None:
                branch = "true" if value else "false"
                findings.append(_finding(
                    "L203",
                    f"branch condition is constant (always {branch})",
                    node.location, fn.name))
        elif isinstance(node, ast.Loop):
            cond = getattr(node, "cond", None)
            value = const_value(cond) if cond is not None else 1
            if (isinstance(node, (ast.While, ast.For)) and cond is not None
                    and value is not None and not value):
                findings.append(_finding(
                    "L204", "loop condition is statically false "
                            "(loop never executes)",
                    node.location, fn.name))
            elif (value is not None and value
                    and not _loop_has_direct_break(node.body)
                    and not _loop_has_return(node.body)):
                findings.append(_finding(
                    "L205", "constant-true loop has no break or return "
                            "(does not terminate)",
                    node.location, fn.name))
    return findings


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _sort_key(finding: Finding) -> tuple[int, int, str]:
    return (finding.line, finding.column, finding.rule)


def lint_program(program: ast.Program) -> list[Finding]:
    """Lint an analyzed program; findings are sorted by source position."""
    findings: list[Finding] = []
    for fn in program.functions:
        findings.extend(_flow_findings(fn))
        findings.extend(_syntactic_findings(fn))
    return sorted(findings, key=_sort_key)


def lint_source(source: str, filename: str = "<minic>") -> list[Finding]:
    """Parse, analyze and lint ``source``.

    Front-end failures are reported as a single ``L100`` finding rather
    than raised, so a lint run over a batch of sources always completes.
    """
    try:
        program = parse_and_analyze(source, filename)
    except MiniCError as error:
        location = getattr(error, "location", None)
        return [_finding("L100", str(error), location, "")]
    return lint_program(program)
