"""Hand-written lexer for the MiniC language.

The lexer supports the C syntax subset used by the FORAY-GEN workloads:
decimal/hex/octal integer literals (with ``u``/``l`` suffixes), floating
literals, character and string literals with the common escapes, ``//`` and
``/* */`` comments, and the full C operator set listed in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from repro.lang.errors import LexError, SourceLocation
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


class Lexer:
    """Converts MiniC source text into a list of tokens."""

    def __init__(self, source: str, filename: str = "<minic>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Lex the whole input; the result always ends with an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "#":
                # Preprocessor-style lines (e.g. #define used as doc) are
                # skipped wholesale; MiniC has no preprocessor.
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        loc = self._location()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", loc)

        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_ident_or_keyword(loc)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(loc)
        if ch == "'":
            return self._lex_char(loc)
        if ch == '"':
            return self._lex_string(loc)

        for text, kind in MULTI_CHAR_OPERATORS:
            if self._source.startswith(text, self._pos):
                self._advance(len(text))
                return Token(kind, text, loc)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(SINGLE_CHAR_OPERATORS[ch], ch, loc)

        raise LexError(f"unexpected character {ch!r}", loc)

    def _lex_ident_or_keyword(self, loc: SourceLocation) -> Token:
        start = self._pos
        while self._pos < len(self._source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self._source[start : self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        value = text if kind is TokenKind.IDENT else None
        return Token(kind, text, loc, value)

    def _lex_number(self, loc: SourceLocation) -> Token:
        start = self._pos
        is_float = False

        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex_digit(self._peek()):
                raise LexError("invalid hex literal", loc)
            while self._is_hex_digit(self._peek()):
                self._advance()
            text = self._source[start : self._pos]
            value = int(text, 16)
            self._skip_int_suffix()
            return Token(TokenKind.INT_LIT, text, loc, value)

        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()

        text = self._source[start : self._pos]
        if is_float:
            if self._peek() in ("f", "F"):
                self._advance()
            return Token(TokenKind.FLOAT_LIT, text, loc, float(text))

        # Octal literals (leading zero) are accepted for C compatibility.
        value = int(text, 8) if len(text) > 1 and text[0] == "0" else int(text)
        self._skip_int_suffix()
        return Token(TokenKind.INT_LIT, text, loc, value)

    def _skip_int_suffix(self) -> None:
        while self._peek() in ("u", "U", "l", "L"):
            self._advance()

    @staticmethod
    def _is_hex_digit(ch: str) -> bool:
        return bool(ch) and ch in "0123456789abcdefABCDEF"

    def _read_escape(self, loc: SourceLocation) -> str:
        self._advance()  # consume backslash
        esc = self._peek()
        if esc == "x":
            self._advance()
            digits = ""
            while self._is_hex_digit(self._peek()):
                digits += self._peek()
                self._advance()
            if not digits:
                raise LexError("invalid \\x escape", loc)
            return chr(int(digits, 16))
        if esc in _ESCAPES:
            self._advance()
            return _ESCAPES[esc]
        raise LexError(f"unknown escape sequence \\{esc}", loc)

    def _lex_char(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        if self._peek() == "\\":
            ch = self._read_escape(loc)
        else:
            ch = self._peek()
            if not ch or ch == "'":
                raise LexError("empty character literal", loc)
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        return Token(TokenKind.CHAR_LIT, f"'{ch}'", loc, ord(ch))

    def _lex_string(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", loc)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._read_escape(loc))
            else:
                chars.append(ch)
                self._advance()
        text = "".join(chars)
        return Token(TokenKind.STRING_LIT, f'"{text}"', loc, text)


def tokenize(source: str, filename: str = "<minic>") -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
