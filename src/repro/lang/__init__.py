"""MiniC frontend: lexer, parser, type system, semantic analysis, printer.

This package is the substrate that replaces the paper's C + gcc toolchain:
workloads are written in MiniC, instrumented by
:mod:`repro.instrument.checkpoints`, and executed by the simulator in
:mod:`repro.sim`.
"""

from repro.lang.errors import (
    LexError,
    MemoryFault,
    MiniCError,
    MiniCRuntimeError,
    ParseError,
    SemanticError,
    SourceLocation,
)
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.printer import to_source
from repro.lang.semantics import analyze, parse_and_analyze

__all__ = [
    "LexError",
    "MemoryFault",
    "MiniCError",
    "MiniCRuntimeError",
    "ParseError",
    "SemanticError",
    "SourceLocation",
    "tokenize",
    "parse",
    "to_source",
    "analyze",
    "parse_and_analyze",
]
