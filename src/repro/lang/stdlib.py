"""Signatures of the MiniC builtin library ("system library" in the paper).

The semantic analyzer uses this table to type-check calls to undeclared
functions; :mod:`repro.sim.builtins` provides the implementations. Table III
of the paper classifies memory references made *inside* these routines as
"system call" references — our simulator tags them with pcs in a dedicated
library range (see :mod:`repro.sim.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ctypes_ import CHAR, CType, DOUBLE, INT, PointerType, VOID

_CHAR_PTR = PointerType(CHAR)
_VOID_PTR = PointerType(VOID)


@dataclass(frozen=True)
class BuiltinSignature:
    name: str
    return_type: CType
    #: Minimum number of arguments; varargs builtins accept more.
    min_args: int
    varargs: bool = False
    #: Whether the builtin touches simulated memory (generating library
    #: trace records).
    touches_memory: bool = False


BUILTIN_SIGNATURES: dict[str, BuiltinSignature] = {
    sig.name: sig
    for sig in [
        BuiltinSignature("printf", INT, 1, varargs=True, touches_memory=True),
        BuiltinSignature("putchar", INT, 1),
        BuiltinSignature("puts", INT, 1, touches_memory=True),
        BuiltinSignature("malloc", _VOID_PTR, 1),
        BuiltinSignature("calloc", _VOID_PTR, 2, touches_memory=True),
        BuiltinSignature("free", VOID, 1),
        BuiltinSignature("memcpy", _VOID_PTR, 3, touches_memory=True),
        BuiltinSignature("memset", _VOID_PTR, 3, touches_memory=True),
        BuiltinSignature("memmove", _VOID_PTR, 3, touches_memory=True),
        BuiltinSignature("strlen", INT, 1, touches_memory=True),
        BuiltinSignature("strcpy", _CHAR_PTR, 2, touches_memory=True),
        BuiltinSignature("strcmp", INT, 2, touches_memory=True),
        BuiltinSignature("abs", INT, 1),
        BuiltinSignature("labs", INT, 1),
        BuiltinSignature("rand", INT, 0),
        BuiltinSignature("srand", VOID, 1),
        BuiltinSignature("exit", VOID, 1),
        # File-input stand-in: fills a buffer with n deterministic 32-bit
        # samples through library stores (the paper's benchmarks stage
        # their inputs through C library reads the same way). The sample
        # ensemble is a run parameter: see repro.sim.inputs.InputSpec.
        BuiltinSignature("read_samples", INT, 2, touches_memory=True),
        BuiltinSignature("sqrt", DOUBLE, 1),
        BuiltinSignature("fabs", DOUBLE, 1),
        BuiltinSignature("sin", DOUBLE, 1),
        BuiltinSignature("cos", DOUBLE, 1),
        BuiltinSignature("tan", DOUBLE, 1),
        BuiltinSignature("atan", DOUBLE, 1),
        BuiltinSignature("atan2", DOUBLE, 2),
        BuiltinSignature("exp", DOUBLE, 1),
        BuiltinSignature("log", DOUBLE, 1),
        BuiltinSignature("log10", DOUBLE, 1),
        BuiltinSignature("pow", DOUBLE, 2),
        BuiltinSignature("floor", DOUBLE, 1),
        BuiltinSignature("ceil", DOUBLE, 1),
        BuiltinSignature("fmod", DOUBLE, 2),
    ]
}
