"""AST node definitions for MiniC.

Nodes are plain mutable classes (not frozen dataclasses) because the
semantic analyzer annotates them in place (``ctype``, ``symbol``,
``node_id``) and the instrumentation pass assigns checkpoint ids to loop
nodes in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ctypes_ import CType
from repro.lang.errors import SourceLocation


class Node:
    """Base class for every AST node."""

    __slots__ = ("location", "node_id")

    def __init__(self, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        #: Unique pre-order id assigned by the semantic analyzer; used to
        #: derive synthetic instruction pcs for memory-access sites.
        self.node_id: int = -1


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ("ctype",)

    def __init__(self, location: SourceLocation | None = None):
        super().__init__(location)
        #: Result type, filled in by the semantic analyzer.
        self.ctype: CType | None = None


class IntLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, location: SourceLocation | None = None):
        super().__init__(location)
        self.value = value


class FloatLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, location: SourceLocation | None = None):
        super().__init__(location)
        self.value = value


class StringLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: str, location: SourceLocation | None = None):
        super().__init__(location)
        self.value = value


class Identifier(Expr):
    __slots__ = ("name", "symbol")

    def __init__(self, name: str, location: SourceLocation | None = None):
        super().__init__(location)
        self.name = name
        #: Resolved symbol (see :mod:`repro.lang.semantics`).
        self.symbol = None


class Unary(Expr):
    """Prefix unary operator: one of ``- ! ~ + * &``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, location=None):
        super().__init__(location)
        self.op = op
        self.operand = operand


class IncDec(Expr):
    """``++``/``--`` in prefix or postfix position."""

    __slots__ = ("op", "operand", "is_postfix")

    def __init__(self, op: str, operand: Expr, is_postfix: bool, location=None):
        super().__init__(location)
        self.op = op  # "++" or "--"
        self.operand = operand
        self.is_postfix = is_postfix


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, location=None):
        super().__init__(location)
        self.op = op
        self.left = left
        self.right = right


class Assign(Expr):
    """Assignment; ``op`` is "" for plain ``=`` or the compound operator
    without the trailing ``=`` (e.g. ``"+"`` for ``+=``)."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Expr, value: Expr, location=None):
        super().__init__(location)
        self.op = op
        self.target = target
        self.value = value


class Ternary(Expr):
    __slots__ = ("cond", "then_expr", "else_expr")

    def __init__(self, cond: Expr, then_expr: Expr, else_expr: Expr, location=None):
        super().__init__(location)
        self.cond = cond
        self.then_expr = then_expr
        self.else_expr = else_expr


class Call(Expr):
    __slots__ = ("name", "args", "is_builtin")

    def __init__(self, name: str, args: list[Expr], location=None):
        super().__init__(location)
        self.name = name
        self.args = args
        #: Set by the semantic analyzer when the callee is a library builtin.
        self.is_builtin = False


class Index(Expr):
    """``base[index]`` subscript."""

    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, location=None):
        super().__init__(location)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.name`` or ``base->name``."""

    __slots__ = ("base", "name", "is_arrow")

    def __init__(self, base: Expr, name: str, is_arrow: bool, location=None):
        super().__init__(location)
        self.base = base
        self.name = name
        self.is_arrow = is_arrow


class Cast(Expr):
    __slots__ = ("target_type", "operand")

    def __init__(self, target_type: CType, operand: Expr, location=None):
        super().__init__(location)
        self.target_type = target_type
        self.operand = operand


class SizeofType(Expr):
    __slots__ = ("queried_type",)

    def __init__(self, queried_type: CType, location=None):
        super().__init__(location)
        self.queried_type = queried_type


class SizeofExpr(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr, location=None):
        super().__init__(location)
        self.operand = operand


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


@dataclass
class VarDecl:
    """A single declared variable within a declaration statement."""

    name: str
    ctype: CType
    init: Expr | None = None
    location: SourceLocation = field(default_factory=SourceLocation)
    #: Resolved symbol, filled in by the semantic analyzer.
    symbol: object = None


class DeclStmt(Stmt):
    __slots__ = ("decls",)

    def __init__(self, decls: list[VarDecl], location=None):
        super().__init__(location)
        self.decls = decls


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, location=None):
        super().__init__(location)
        self.expr = expr


class EmptyStmt(Stmt):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: list[Stmt], location=None):
        super().__init__(location)
        self.stmts = stmts


class If(Stmt):
    __slots__ = ("cond", "then_stmt", "else_stmt")

    def __init__(self, cond: Expr, then_stmt: Stmt, else_stmt: Stmt | None, location=None):
        super().__init__(location)
        self.cond = cond
        self.then_stmt = then_stmt
        self.else_stmt = else_stmt


class Loop(Stmt):
    """Common base of the three loop statements.

    ``begin_id`` / ``body_begin_id`` / ``body_end_id`` hold the checkpoint
    ids assigned by :mod:`repro.instrument.checkpoints`; they stay ``None``
    in un-instrumented programs.
    """

    __slots__ = ("body", "begin_id", "body_begin_id", "body_end_id")

    kind: str = "loop"

    def __init__(self, body: Stmt, location=None):
        super().__init__(location)
        self.body = body
        self.begin_id: int | None = None
        self.body_begin_id: int | None = None
        self.body_end_id: int | None = None

    @property
    def is_instrumented(self) -> bool:
        return self.begin_id is not None


class For(Loop):
    __slots__ = ("init", "cond", "step")

    kind = "for"

    def __init__(self, init: Stmt | None, cond: Expr | None, step: Expr | None,
                 body: Stmt, location=None):
        super().__init__(body, location)
        self.init = init
        self.cond = cond
        self.step = step


class While(Loop):
    __slots__ = ("cond",)

    kind = "while"

    def __init__(self, cond: Expr, body: Stmt, location=None):
        super().__init__(body, location)
        self.cond = cond


class DoWhile(Loop):
    __slots__ = ("cond",)

    kind = "do"

    def __init__(self, body: Stmt, cond: Expr, location=None):
        super().__init__(body, location)
        self.cond = cond


class Return(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr | None, location=None):
        super().__init__(location)
        self.expr = expr


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType
    location: SourceLocation = field(default_factory=SourceLocation)
    symbol: object = None


class FunctionDef(Node):
    __slots__ = ("name", "return_type", "params", "body")

    def __init__(self, name: str, return_type: CType, params: list[Param],
                 body: Block, location=None):
        super().__init__(location)
        self.name = name
        self.return_type = return_type
        self.params = params
        self.body = body


class StructDef(Node):
    __slots__ = ("struct_type",)

    def __init__(self, struct_type, location=None):
        super().__init__(location)
        self.struct_type = struct_type


class Program(Node):
    """A parsed translation unit."""

    __slots__ = ("struct_defs", "globals", "functions", "source")

    def __init__(self, struct_defs: list[StructDef], globals_: list[DeclStmt],
                 functions: list[FunctionDef], source: str = ""):
        super().__init__()
        self.struct_defs = struct_defs
        self.globals = globals_
        self.functions = functions
        #: Original source text (used for line counting in Table I).
        self.source = source

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def has_function(self, name: str) -> bool:
        return any(fn.name == name for fn in self.functions)


def walk(node) -> list:
    """Yield ``node`` and all AST descendants in pre-order.

    Accepts any Node, VarDecl or Param; returns a list so callers can
    filter with comprehensions without generator bookkeeping.
    """
    out = []
    _walk_into(node, out)
    return out


def _walk_into(node, out: list) -> None:
    if node is None:
        return
    out.append(node)
    for child in children(node):
        _walk_into(child, out)


def children(node) -> list:
    """Direct AST children of ``node``, in source order."""
    if isinstance(node, Program):
        return [*node.struct_defs, *node.globals, *node.functions]
    if isinstance(node, FunctionDef):
        return [*node.params, node.body]
    if isinstance(node, DeclStmt):
        return list(node.decls)
    if isinstance(node, VarDecl):
        return [node.init] if node.init is not None else []
    if isinstance(node, ExprStmt):
        return [node.expr]
    if isinstance(node, Block):
        return list(node.stmts)
    if isinstance(node, If):
        out = [node.cond, node.then_stmt]
        if node.else_stmt is not None:
            out.append(node.else_stmt)
        return out
    if isinstance(node, For):
        return [n for n in (node.init, node.cond, node.step, node.body) if n is not None]
    if isinstance(node, While):
        return [node.cond, node.body]
    if isinstance(node, DoWhile):
        return [node.body, node.cond]
    if isinstance(node, Return):
        return [node.expr] if node.expr is not None else []
    if isinstance(node, Unary):
        return [node.operand]
    if isinstance(node, IncDec):
        return [node.operand]
    if isinstance(node, Binary):
        return [node.left, node.right]
    if isinstance(node, Assign):
        return [node.target, node.value]
    if isinstance(node, Ternary):
        return [node.cond, node.then_expr, node.else_expr]
    if isinstance(node, Call):
        return list(node.args)
    if isinstance(node, Index):
        return [node.base, node.index]
    if isinstance(node, Member):
        return [node.base]
    if isinstance(node, Cast):
        return [node.operand]
    if isinstance(node, SizeofExpr):
        return [node.operand]
    return []
