"""Semantic analysis for MiniC.

Responsibilities:

* build symbol tables and resolve every :class:`Identifier` to a
  :class:`Symbol`;
* annotate every expression with its :class:`~repro.lang.ctypes_.CType`;
* decide which variables live in simulated memory: arrays, structs and
  globals always do; scalar locals/params are *register-promoted* unless
  their address is taken (``&x``) — this matches the paper's traces, where
  plain loop variables generate no memory accesses;
* assign a unique pre-order ``node_id`` to every AST node (the simulator
  derives synthetic instruction pcs for memory-access sites from these);
* validate ``break``/``continue`` placement and call arity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast
from repro.lang.ctypes_ import (
    CHAR,
    CType,
    DOUBLE,
    INT,
    PointerType,
    decay,
    integer_promote,
    usual_arithmetic_conversion,
)
from repro.lang.errors import SemanticError
from repro.lang.stdlib import BUILTIN_SIGNATURES

_symbol_ids = itertools.count()


@dataclass
class Symbol:
    """A declared variable (global, local or parameter)."""

    name: str
    ctype: CType
    storage: str  # "global" | "local" | "param"
    uid: int = field(default_factory=lambda: next(_symbol_ids))
    #: True when the variable must live in simulated memory (arrays,
    #: structs, globals, address-taken scalars). Register-promoted scalars
    #: have this False and never produce trace records.
    in_memory: bool = False

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other) -> bool:
        return self is other


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol, location) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(f"redefinition of {symbol.name!r}", location)
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Single-pass analyzer; call :meth:`analyze` on a parsed program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.globals_scope = _Scope()
        self.functions: dict[str, ast.FunctionDef] = {}
        self._current_function: ast.FunctionDef | None = None
        self._loop_depth = 0

    # ------------------------------------------------------------------

    def analyze(self) -> ast.Program:
        for fn in self.program.functions:
            if fn.name in self.functions:
                raise SemanticError(f"redefinition of function {fn.name!r}", fn.location)
            if fn.name in BUILTIN_SIGNATURES:
                raise SemanticError(
                    f"function {fn.name!r} shadows a library builtin", fn.location
                )
            self.functions[fn.name] = fn

        for decl_stmt in self.program.globals:
            for decl in decl_stmt.decls:
                self._define_global(decl)

        for fn in self.program.functions:
            self._analyze_function(fn)

        self._assign_node_ids()
        return self.program

    def _assign_node_ids(self) -> None:
        for node_id, node in enumerate(ast.walk(self.program)):
            if isinstance(node, ast.Node):
                node.node_id = node_id

    # -- declarations ---------------------------------------------------

    def _define_global(self, decl: ast.VarDecl) -> None:
        if decl.ctype.is_void:
            raise SemanticError(f"variable {decl.name!r} declared void", decl.location)
        symbol = Symbol(decl.name, decl.ctype, "global", in_memory=True)
        self.globals_scope.define(symbol, decl.location)
        decl.symbol = symbol
        if decl.init is not None:
            self._analyze_initializer(decl.init, decl.ctype, self.globals_scope)

    def _analyze_function(self, fn: ast.FunctionDef) -> None:
        self._current_function = fn
        scope = _Scope(self.globals_scope)
        for param in fn.params:
            symbol = Symbol(param.name, param.ctype, "param",
                            in_memory=not param.ctype.is_scalar)
            scope.define(symbol, param.location)
            param.symbol = symbol
        self._analyze_block(fn.body, scope)
        self._current_function = None

    # -- statements -------------------------------------------------------

    def _analyze_block(self, block: ast.Block, parent_scope: _Scope) -> None:
        scope = _Scope(parent_scope)
        for stmt in block.stmts:
            self._analyze_stmt(stmt, scope)

    def _analyze_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._define_local(decl, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._analyze_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            self._analyze_block(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._analyze_expr(stmt.cond, scope)
            self._analyze_stmt(stmt.then_stmt, scope)
            if stmt.else_stmt is not None:
                self._analyze_stmt(stmt.else_stmt, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._analyze_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._analyze_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._analyze_expr(stmt.step, inner)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.While):
            self._analyze_expr(stmt.cond, scope)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            self._analyze_stmt(stmt.body, scope)
            self._loop_depth -= 1
            self._analyze_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None:
                self._analyze_expr(stmt.expr, scope)
                if self._current_function and self._current_function.return_type.is_void:
                    raise SemanticError("void function returns a value", stmt.location)
            elif self._current_function and not self._current_function.return_type.is_void:
                raise SemanticError("non-void function returns no value", stmt.location)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                word = "break" if isinstance(stmt, ast.Break) else "continue"
                raise SemanticError(f"{word} outside of a loop", stmt.location)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover - defensive
            raise SemanticError(f"unknown statement {type(stmt).__name__}", stmt.location)

    def _define_local(self, decl: ast.VarDecl, scope: _Scope) -> None:
        if decl.ctype.is_void:
            raise SemanticError(f"variable {decl.name!r} declared void", decl.location)
        in_memory = not decl.ctype.is_scalar
        symbol = Symbol(decl.name, decl.ctype, "local", in_memory=in_memory)
        scope.define(symbol, decl.location)
        decl.symbol = symbol
        if decl.init is not None:
            self._analyze_initializer(decl.init, decl.ctype, scope)

    def _analyze_initializer(self, init: ast.Expr, target: CType, scope: _Scope) -> None:
        if isinstance(init, ast.Call) and init.name == "__init_list__":
            if not (target.is_array or target.is_struct):
                raise SemanticError("brace initializer on a scalar", init.location)
            init.ctype = target
            init.is_builtin = True  # prevents callee resolution
            if target.is_array:
                element = target.element  # type: ignore[attr-defined]
                for item in init.args:
                    self._analyze_initializer(item, element, scope)
            else:
                members = target.members  # type: ignore[attr-defined]
                if len(init.args) > len(members):
                    raise SemanticError("too many struct initializers", init.location)
                for item, member in zip(init.args, members):
                    self._analyze_initializer(item, member.ctype, scope)
            return
        if isinstance(init, ast.StringLiteral) and target.is_array:
            init.ctype = PointerType(CHAR)
            return
        self._analyze_expr(init, scope)

    # -- expressions --------------------------------------------------------

    def _analyze_expr(self, expr: ast.Expr, scope: _Scope) -> CType:
        ctype = self._compute_type(expr, scope)
        expr.ctype = ctype
        return ctype

    def _compute_type(self, expr: ast.Expr, scope: _Scope) -> CType:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.FloatLiteral):
            return DOUBLE
        if isinstance(expr, ast.StringLiteral):
            return PointerType(CHAR)
        if isinstance(expr, ast.Identifier):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise SemanticError(f"use of undeclared identifier {expr.name!r}",
                                    expr.location)
            expr.symbol = symbol
            return symbol.ctype
        if isinstance(expr, ast.Unary):
            return self._type_unary(expr, scope)
        if isinstance(expr, ast.IncDec):
            operand = self._analyze_expr(expr.operand, scope)
            self._require_lvalue(expr.operand)
            if not decay(operand).is_scalar:
                raise SemanticError("++/-- requires a scalar operand", expr.location)
            return operand
        if isinstance(expr, ast.Binary):
            return self._type_binary(expr, scope)
        if isinstance(expr, ast.Assign):
            target = self._analyze_expr(expr.target, scope)
            self._require_lvalue(expr.target)
            self._analyze_expr(expr.value, scope)
            if target.is_array:
                raise SemanticError("cannot assign to an array", expr.location)
            return target
        if isinstance(expr, ast.Ternary):
            self._analyze_expr(expr.cond, scope)
            then_type = self._analyze_expr(expr.then_expr, scope)
            else_type = self._analyze_expr(expr.else_expr, scope)
            then_type = decay(then_type)
            else_type = decay(else_type)
            if then_type.is_pointer or else_type.is_pointer:
                return then_type if then_type.is_pointer else else_type
            if then_type.is_void:
                return then_type
            return usual_arithmetic_conversion(then_type, else_type)
        if isinstance(expr, ast.Call):
            return self._type_call(expr, scope)
        if isinstance(expr, ast.Index):
            base = decay(self._analyze_expr(expr.base, scope))
            self._analyze_expr(expr.index, scope)
            if not base.is_pointer:
                raise SemanticError("subscripted value is not an array or pointer",
                                    expr.location)
            return base.pointee  # type: ignore[attr-defined]
        if isinstance(expr, ast.Member):
            base = self._analyze_expr(expr.base, scope)
            if expr.is_arrow:
                base = decay(base)
                if not base.is_pointer or not base.pointee.is_struct:  # type: ignore[attr-defined]
                    raise SemanticError("-> applied to a non-struct-pointer", expr.location)
                struct = base.pointee  # type: ignore[attr-defined]
            else:
                if not base.is_struct:
                    raise SemanticError(". applied to a non-struct", expr.location)
                struct = base
            return struct.member(expr.name).ctype
        if isinstance(expr, ast.Cast):
            self._analyze_expr(expr.operand, scope)
            return expr.target_type
        if isinstance(expr, ast.SizeofType):
            return INT
        if isinstance(expr, ast.SizeofExpr):
            self._analyze_expr(expr.operand, scope)
            return INT
        raise SemanticError(f"unknown expression {type(expr).__name__}",  # pragma: no cover
                            expr.location)

    def _type_unary(self, expr: ast.Unary, scope: _Scope) -> CType:
        operand = self._analyze_expr(expr.operand, scope)
        op = expr.op
        if op == "*":
            decayed = decay(operand)
            if not decayed.is_pointer:
                raise SemanticError("dereference of a non-pointer", expr.location)
            pointee = decayed.pointee  # type: ignore[attr-defined]
            if pointee.is_void:
                raise SemanticError("dereference of void*", expr.location)
            return pointee
        if op == "&":
            self._require_lvalue(expr.operand)
            self._mark_address_taken(expr.operand)
            return PointerType(operand)
        if op in ("-", "+"):
            if not decay(operand).is_scalar or decay(operand).is_pointer:
                raise SemanticError(f"unary {op} on a non-arithmetic type", expr.location)
            return integer_promote(operand) if operand.is_integer else operand
        if op == "!":
            return INT
        if op == "~":
            if not operand.is_integer:
                raise SemanticError("~ requires an integer operand", expr.location)
            return integer_promote(operand)
        raise SemanticError(f"unknown unary operator {op!r}", expr.location)  # pragma: no cover

    def _type_binary(self, expr: ast.Binary, scope: _Scope) -> CType:
        left = decay(self._analyze_expr(expr.left, scope))
        right = decay(self._analyze_expr(expr.right, scope))
        op = expr.op
        if op in ("&&", "||", "==", "!=", "<", ">", "<=", ">="):
            return INT
        if op == "+":
            if left.is_pointer and right.is_integer:
                return left
            if right.is_pointer and left.is_integer:
                return right
            if left.is_pointer or right.is_pointer:
                raise SemanticError("invalid pointer addition", expr.location)
            return usual_arithmetic_conversion(left, right)
        if op == "-":
            if left.is_pointer and right.is_pointer:
                return INT  # ptrdiff
            if left.is_pointer and right.is_integer:
                return left
            if right.is_pointer:
                raise SemanticError("cannot subtract a pointer from an integer",
                                    expr.location)
            return usual_arithmetic_conversion(left, right)
        if op in ("*", "/"):
            if left.is_pointer or right.is_pointer:
                raise SemanticError(f"invalid operands to {op}", expr.location)
            return usual_arithmetic_conversion(left, right)
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if not (left.is_integer and right.is_integer):
                raise SemanticError(f"{op} requires integer operands", expr.location)
            if op in ("<<", ">>"):
                return integer_promote(left)
            return usual_arithmetic_conversion(left, right)
        raise SemanticError(f"unknown binary operator {op!r}", expr.location)  # pragma: no cover

    def _type_call(self, expr: ast.Call, scope: _Scope) -> CType:
        for arg in expr.args:
            self._analyze_expr(arg, scope)
        fn = self.functions.get(expr.name)
        if fn is not None:
            if len(expr.args) != len(fn.params):
                raise SemanticError(
                    f"call to {expr.name!r} with {len(expr.args)} arguments; "
                    f"expected {len(fn.params)}",
                    expr.location,
                )
            return fn.return_type
        sig = BUILTIN_SIGNATURES.get(expr.name)
        if sig is not None:
            expr.is_builtin = True
            if len(expr.args) < sig.min_args or (
                not sig.varargs and len(expr.args) > sig.min_args
            ):
                raise SemanticError(
                    f"call to builtin {expr.name!r} with {len(expr.args)} arguments; "
                    f"expected {sig.min_args}{'+' if sig.varargs else ''}",
                    expr.location,
                )
            return sig.return_type
        raise SemanticError(f"call to undefined function {expr.name!r}", expr.location)

    # -- lvalues -----------------------------------------------------------

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.Identifier, ast.Index, ast.Member)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise SemanticError("expression is not an lvalue", expr.location)

    def _mark_address_taken(self, expr: ast.Expr) -> None:
        """Force the root variable of an address-of expression into memory."""
        node = expr
        while True:
            if isinstance(node, ast.Identifier):
                if node.symbol is not None:
                    node.symbol.in_memory = True
                return
            if isinstance(node, ast.Index):
                node = node.base
            elif isinstance(node, ast.Member) and not node.is_arrow:
                node = node.base
            else:
                # &*p, &p->f: the storage pointed to is already in memory.
                return


def analyze(program: ast.Program) -> ast.Program:
    """Run semantic analysis in place and return the same program."""
    return SemanticAnalyzer(program).analyze()


def parse_and_analyze(source: str, filename: str = "<minic>") -> ast.Program:
    """Parse plus analyze in one call (the usual entry point)."""
    from repro.lang.parser import parse

    return analyze(parse(source, filename))
