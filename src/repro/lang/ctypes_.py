"""The MiniC type system.

Models a 32-bit embedded target (ILP32): ``int`` and pointers are 4 bytes,
``long`` is 8 bytes, ``char`` is signed and 1 byte. Struct layout follows
the usual C rules (each member aligned to its natural alignment, struct size
rounded up to the largest member alignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import SemanticError

#: Pointer size of the simulated 32-bit target, in bytes.
POINTER_SIZE = 4


class CType:
    """Base class of all MiniC types."""

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def alignment(self) -> int:
        return self.size

    @property
    def is_scalar(self) -> bool:
        """True for arithmetic and pointer types (register-promotable)."""
        return False

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_array(self) -> bool:
        return False

    @property
    def is_struct(self) -> bool:
        return False

    @property
    def is_void(self) -> bool:
        return False


@dataclass(frozen=True)
class IntType(CType):
    """A (possibly unsigned) integer type of a given byte width."""

    byte_size: int
    signed: bool = True
    name: str = "int"

    @property
    def size(self) -> int:
        return self.byte_size

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def is_integer(self) -> bool:
        return True

    @property
    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (8 * self.byte_size - 1))

    @property
    def max_value(self) -> int:
        if not self.signed:
            return (1 << (8 * self.byte_size)) - 1
        return (1 << (8 * self.byte_size - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this type's range (two's-complement semantics)."""
        mask = (1 << (8 * self.byte_size)) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= mask + 1
        return value

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FloatType(CType):
    """A floating-point type (float = 4 bytes, double = 8 bytes)."""

    byte_size: int
    name: str = "double"

    @property
    def size(self) -> int:
        return self.byte_size

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def is_float(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VoidType(CType):
    @property
    def size(self) -> int:
        return 0

    @property
    def alignment(self) -> int:
        return 1

    @property
    def is_void(self) -> bool:
        return True

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(CType):
    """Pointer to ``pointee`` on the 32-bit simulated target."""

    pointee: CType

    @property
    def size(self) -> int:
        return POINTER_SIZE

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    """Fixed-length array. Multi-dimensional arrays nest ArrayTypes."""

    element: CType
    length: int

    @property
    def size(self) -> int:
        return self.element.size * self.length

    @property
    def alignment(self) -> int:
        return self.element.alignment

    @property
    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class StructMember:
    name: str
    ctype: CType
    offset: int


@dataclass(frozen=True)
class StructType(CType):
    """A struct with C-style layout, computed by :func:`layout_struct`."""

    tag: str
    members: tuple[StructMember, ...] = field(default=())
    total_size: int = 0
    align: int = 1

    @property
    def size(self) -> int:
        return self.total_size

    @property
    def alignment(self) -> int:
        return self.align

    @property
    def is_struct(self) -> bool:
        return True

    def member(self, name: str) -> StructMember:
        for member in self.members:
            if member.name == name:
                return member
        raise SemanticError(f"struct {self.tag} has no member {name!r}")

    def has_member(self, name: str) -> bool:
        return any(m.name == name for m in self.members)

    def __str__(self) -> str:
        return f"struct {self.tag}"


# Canonical type singletons -------------------------------------------------

CHAR = IntType(1, signed=True, name="char")
UCHAR = IntType(1, signed=False, name="unsigned char")
SHORT = IntType(2, signed=True, name="short")
USHORT = IntType(2, signed=False, name="unsigned short")
INT = IntType(4, signed=True, name="int")
UINT = IntType(4, signed=False, name="unsigned int")
LONG = IntType(8, signed=True, name="long")
ULONG = IntType(8, signed=False, name="unsigned long")
FLOAT = FloatType(4, name="float")
DOUBLE = FloatType(8, name="double")
VOID = VoidType()


def layout_struct(tag: str, fields: list[tuple[str, CType]]) -> StructType:
    """Compute C layout for a struct: aligned members, padded total size."""
    members: list[StructMember] = []
    offset = 0
    align = 1
    for name, ctype in fields:
        member_align = max(1, ctype.alignment)
        offset = _round_up(offset, member_align)
        members.append(StructMember(name, ctype, offset))
        offset += ctype.size
        align = max(align, member_align)
    total = _round_up(offset, align) if offset else 0
    return StructType(tag, tuple(members), total, align)


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def decay(ctype: CType) -> CType:
    """Array-to-pointer decay, as in C expression contexts."""
    if isinstance(ctype, ArrayType):
        return PointerType(ctype.element)
    return ctype


def integer_promote(ctype: CType) -> CType:
    """C integer promotion: types narrower than int promote to int."""
    if isinstance(ctype, IntType) and ctype.byte_size < INT.byte_size:
        return INT
    return ctype


def usual_arithmetic_conversion(left: CType, right: CType) -> CType:
    """The C 'usual arithmetic conversions' for binary operators."""
    if left.is_float or right.is_float:
        widest = max(
            (t for t in (left, right) if t.is_float),
            key=lambda t: t.size,
        )
        return DOUBLE if widest.size >= DOUBLE.size else widest
    left = integer_promote(left)
    right = integer_promote(right)
    assert isinstance(left, IntType) and isinstance(right, IntType)
    if left == right:
        return left
    if left.byte_size != right.byte_size:
        return left if left.byte_size > right.byte_size else right
    # Same width, different signedness: unsigned wins.
    return left if not left.signed else right
