"""Recursive-descent parser for MiniC.

The grammar is the C subset needed by the FORAY-GEN workloads:

* struct definitions (must precede use), global variable declarations with
  constant initializers, and function definitions;
* declarations with pointer stars and array suffixes (``int *a[10]``),
  brace initializer lists, and string-literal initializers;
* all C statements except ``switch``/``goto``;
* the full C expression grammar (assignment, ternary, binary precedence
  ladder, casts, unary, postfix, primary) minus the comma operator.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.ctypes_ import (
    CHAR,
    CType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PointerType,
    SHORT,
    StructType,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    VOID,
    ArrayType,
    layout_struct,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

_TYPE_START_KINDS = {
    TokenKind.KW_INT,
    TokenKind.KW_CHAR,
    TokenKind.KW_SHORT,
    TokenKind.KW_LONG,
    TokenKind.KW_FLOAT,
    TokenKind.KW_DOUBLE,
    TokenKind.KW_VOID,
    TokenKind.KW_UNSIGNED,
    TokenKind.KW_SIGNED,
    TokenKind.KW_STRUCT,
    TokenKind.KW_CONST,
    TokenKind.KW_STATIC,
}

# Binary operator precedence (higher binds tighter), mirroring C.
_BINARY_PRECEDENCE: dict[TokenKind, tuple[int, str]] = {
    TokenKind.OR_OR: (1, "||"),
    TokenKind.AND_AND: (2, "&&"),
    TokenKind.PIPE: (3, "|"),
    TokenKind.CARET: (4, "^"),
    TokenKind.AMP: (5, "&"),
    TokenKind.EQ: (6, "=="),
    TokenKind.NE: (6, "!="),
    TokenKind.LT: (7, "<"),
    TokenKind.GT: (7, ">"),
    TokenKind.LE: (7, "<="),
    TokenKind.GE: (7, ">="),
    TokenKind.LSHIFT: (8, "<<"),
    TokenKind.RSHIFT: (8, ">>"),
    TokenKind.PLUS: (9, "+"),
    TokenKind.MINUS: (9, "-"),
    TokenKind.STAR: (10, "*"),
    TokenKind.SLASH: (10, "/"),
    TokenKind.PERCENT: (10, "%"),
}

_ASSIGN_OPS: dict[TokenKind, str] = {
    TokenKind.ASSIGN: "",
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
    TokenKind.PERCENT_ASSIGN: "%",
    TokenKind.AMP_ASSIGN: "&",
    TokenKind.PIPE_ASSIGN: "|",
    TokenKind.CARET_ASSIGN: "^",
    TokenKind.LSHIFT_ASSIGN: "<<",
    TokenKind.RSHIFT_ASSIGN: ">>",
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._structs: dict[str, StructType] = {}

    # -- token helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value!r} but found {token.text or 'EOF'!r}{where}",
                token.location,
            )
        return self._advance()

    # -- top level ----------------------------------------------------

    def parse_program(self, source: str = "") -> ast.Program:
        struct_defs: list[ast.StructDef] = []
        globals_: list[ast.DeclStmt] = []
        functions: list[ast.FunctionDef] = []
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.KW_STRUCT) and self._peek(2).kind is TokenKind.LBRACE:
                struct_defs.append(self._parse_struct_def())
                continue
            item = self._parse_global_or_function()
            if isinstance(item, ast.FunctionDef):
                functions.append(item)
            else:
                globals_.append(item)
        return ast.Program(struct_defs, globals_, functions, source)

    def _parse_struct_def(self) -> ast.StructDef:
        loc = self._expect(TokenKind.KW_STRUCT).location
        tag = self._expect(TokenKind.IDENT, "struct definition").text
        self._expect(TokenKind.LBRACE)
        fields: list[tuple[str, CType]] = []
        while not self._accept(TokenKind.RBRACE):
            base = self._parse_type_specifier()
            while True:
                ctype, name, _ = self._parse_declarator(base)
                fields.append((name, ctype))
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.SEMI, "struct member")
        self._expect(TokenKind.SEMI, "struct definition")
        if tag in self._structs:
            raise ParseError(f"struct {tag} redefined", loc)
        struct_type = layout_struct(tag, fields)
        self._structs[tag] = struct_type
        return ast.StructDef(struct_type, loc)

    def _parse_global_or_function(self):
        base = self._parse_type_specifier()
        ctype, name, loc = self._parse_declarator(base)
        if self._at(TokenKind.LPAREN):
            return self._parse_function_rest(ctype, name, loc)
        decls = [self._finish_var_decl(ctype, name, loc)]
        while self._accept(TokenKind.COMMA):
            ctype2, name2, loc2 = self._parse_declarator(base)
            decls.append(self._finish_var_decl(ctype2, name2, loc2))
        self._expect(TokenKind.SEMI, "global declaration")
        return ast.DeclStmt(decls, loc)

    def _parse_function_rest(self, return_type: CType, name: str, loc) -> ast.FunctionDef:
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            if self._at(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
                self._advance()
            else:
                while True:
                    base = self._parse_type_specifier()
                    ptype, pname, ploc = self._parse_declarator(base)
                    if ptype.is_array:
                        # Array parameters decay to pointers, as in C.
                        assert isinstance(ptype, ArrayType)
                        ptype = PointerType(ptype.element)
                    params.append(ast.Param(pname, ptype, ploc))
                    if not self._accept(TokenKind.COMMA):
                        break
        self._expect(TokenKind.RPAREN, "parameter list")
        body = self._parse_block()
        return ast.FunctionDef(name, return_type, params, body, loc)

    def _finish_var_decl(self, ctype: CType, name: str, loc) -> ast.VarDecl:
        init = None
        if self._accept(TokenKind.ASSIGN):
            init = self._parse_initializer()
        return ast.VarDecl(name, ctype, init, loc)

    def _parse_initializer(self) -> ast.Expr:
        if self._at(TokenKind.LBRACE):
            return self._parse_init_list()
        return self._parse_assignment_expr()

    def _parse_init_list(self) -> ast.Expr:
        loc = self._expect(TokenKind.LBRACE).location
        items: list[ast.Expr] = []
        if not self._at(TokenKind.RBRACE):
            while True:
                items.append(self._parse_initializer())
                if not self._accept(TokenKind.COMMA):
                    break
                if self._at(TokenKind.RBRACE):  # trailing comma
                    break
        self._expect(TokenKind.RBRACE, "initializer list")
        # Initializer lists are modelled as a Call node with a reserved name;
        # the semantic analyzer expands them against the declared type.
        node = ast.Call("__init_list__", items, loc)
        return node

    # -- types ---------------------------------------------------------

    def _looks_like_type(self) -> bool:
        kind = self._peek().kind
        if kind in (TokenKind.KW_CONST, TokenKind.KW_STATIC):
            return True
        if kind is TokenKind.KW_STRUCT:
            return True
        return kind in _TYPE_START_KINDS

    def _parse_type_specifier(self) -> CType:
        """Parse a base type (no pointer stars / array suffixes)."""
        while self._accept(TokenKind.KW_CONST) or self._accept(TokenKind.KW_STATIC):
            pass
        token = self._peek()
        if token.kind is TokenKind.KW_STRUCT:
            self._advance()
            tag_token = self._expect(TokenKind.IDENT, "struct type")
            struct_type = self._structs.get(tag_token.text)
            if struct_type is None:
                raise ParseError(f"unknown struct {tag_token.text!r}", tag_token.location)
            base: CType = struct_type
        else:
            base = self._parse_arith_type()
        while self._accept(TokenKind.KW_CONST):
            pass
        return base

    def _parse_arith_type(self) -> CType:
        token = self._peek()
        signed = True
        saw_sign = False
        if token.kind in (TokenKind.KW_UNSIGNED, TokenKind.KW_SIGNED):
            signed = token.kind is TokenKind.KW_SIGNED
            saw_sign = True
            self._advance()
            token = self._peek()

        mapping_signed = {
            TokenKind.KW_CHAR: CHAR,
            TokenKind.KW_SHORT: SHORT,
            TokenKind.KW_INT: INT,
            TokenKind.KW_LONG: LONG,
        }
        mapping_unsigned = {
            TokenKind.KW_CHAR: UCHAR,
            TokenKind.KW_SHORT: USHORT,
            TokenKind.KW_INT: UINT,
            TokenKind.KW_LONG: ULONG,
        }
        if token.kind in mapping_signed:
            self._advance()
            if token.kind in (TokenKind.KW_SHORT, TokenKind.KW_LONG):
                self._accept(TokenKind.KW_INT)  # "short int", "long int"
            return mapping_signed[token.kind] if signed else mapping_unsigned[token.kind]
        if token.kind is TokenKind.KW_FLOAT:
            self._advance()
            return FLOAT
        if token.kind is TokenKind.KW_DOUBLE:
            self._advance()
            return DOUBLE
        if token.kind is TokenKind.KW_VOID:
            self._advance()
            return VOID
        if saw_sign:
            return INT if signed else UINT  # bare "unsigned"
        raise ParseError(f"expected type but found {token.text!r}", token.location)

    def _parse_declarator(self, base: CType) -> tuple[CType, str, object]:
        """Parse ``* * name [N][M]`` and return (type, name, location)."""
        ctype = base
        while self._accept(TokenKind.STAR):
            while self._accept(TokenKind.KW_CONST):
                pass
            ctype = PointerType(ctype)
        name_token = self._expect(TokenKind.IDENT, "declarator")
        dims: list[int] = []
        while self._accept(TokenKind.LBRACKET):
            dim_expr = self._parse_conditional_expr()
            dims.append(self._const_int(dim_expr))
            self._expect(TokenKind.RBRACKET, "array dimension")
        for dim in reversed(dims):
            ctype = ArrayType(ctype, dim)
        return ctype, name_token.text, name_token.location

    def _const_int(self, expr: ast.Expr) -> int:
        """Fold a constant integer expression used as an array dimension."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_int(expr.operand)
        if isinstance(expr, ast.Binary):
            left = self._const_int(expr.left)
            right = self._const_int(expr.right)
            ops = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right,
                "%": lambda: left % right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
            }
            if expr.op in ops:
                return ops[expr.op]()
        raise ParseError("array dimension must be a constant expression", expr.location)

    # -- statements -----------------------------------------------------

    def _parse_block(self) -> ast.Block:
        loc = self._expect(TokenKind.LBRACE, "block").location
        stmts: list[ast.Stmt] = []
        while not self._accept(TokenKind.RBRACE):
            stmts.append(self._parse_statement())
        return ast.Block(stmts, loc)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.SEMI:
            self._advance()
            return ast.EmptyStmt(token.location)
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_RETURN:
            self._advance()
            expr = None if self._at(TokenKind.SEMI) else self._parse_expr()
            self._expect(TokenKind.SEMI, "return")
            return ast.Return(expr, token.location)
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI, "break")
            return ast.Break(token.location)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI, "continue")
            return ast.Continue(token.location)
        if self._looks_like_type():
            return self._parse_decl_stmt()
        expr = self._parse_expr()
        self._expect(TokenKind.SEMI, "expression statement")
        return ast.ExprStmt(expr, token.location)

    def _parse_decl_stmt(self) -> ast.DeclStmt:
        loc = self._peek().location
        base = self._parse_type_specifier()
        decls = []
        while True:
            ctype, name, dloc = self._parse_declarator(base)
            decls.append(self._finish_var_decl(ctype, name, dloc))
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.SEMI, "declaration")
        return ast.DeclStmt(decls, loc)

    def _parse_if(self) -> ast.If:
        loc = self._expect(TokenKind.KW_IF).location
        self._expect(TokenKind.LPAREN, "if")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "if")
        then_stmt = self._parse_statement()
        else_stmt = None
        if self._accept(TokenKind.KW_ELSE):
            else_stmt = self._parse_statement()
        return ast.If(cond, then_stmt, else_stmt, loc)

    def _parse_for(self) -> ast.For:
        loc = self._expect(TokenKind.KW_FOR).location
        self._expect(TokenKind.LPAREN, "for")
        init: ast.Stmt | None = None
        if not self._accept(TokenKind.SEMI):
            if self._looks_like_type():
                init = self._parse_decl_stmt()
            else:
                expr = self._parse_expr()
                self._expect(TokenKind.SEMI, "for initializer")
                init = ast.ExprStmt(expr, loc)
        cond = None if self._at(TokenKind.SEMI) else self._parse_expr()
        self._expect(TokenKind.SEMI, "for condition")
        step = None if self._at(TokenKind.RPAREN) else self._parse_expr()
        self._expect(TokenKind.RPAREN, "for")
        body = self._parse_statement()
        return ast.For(init, cond, step, body, loc)

    def _parse_while(self) -> ast.While:
        loc = self._expect(TokenKind.KW_WHILE).location
        self._expect(TokenKind.LPAREN, "while")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "while")
        body = self._parse_statement()
        return ast.While(cond, body, loc)

    def _parse_do_while(self) -> ast.DoWhile:
        loc = self._expect(TokenKind.KW_DO).location
        body = self._parse_statement()
        self._expect(TokenKind.KW_WHILE, "do-while")
        self._expect(TokenKind.LPAREN, "do-while")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "do-while")
        self._expect(TokenKind.SEMI, "do-while")
        return ast.DoWhile(body, cond, loc)

    # -- expressions ------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment_expr()

    def _parse_assignment_expr(self) -> ast.Expr:
        left = self._parse_conditional_expr()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment_expr()
            return ast.Assign(_ASSIGN_OPS[token.kind], left, value, token.location)
        return left

    def _parse_conditional_expr(self) -> ast.Expr:
        cond = self._parse_binary_expr(0)
        if self._at(TokenKind.QUESTION):
            loc = self._advance().location
            then_expr = self._parse_assignment_expr()
            self._expect(TokenKind.COLON, "conditional expression")
            else_expr = self._parse_conditional_expr()
            return ast.Ternary(cond, then_expr, else_expr, loc)
        return cond

    def _parse_binary_expr(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary_expr()
        while True:
            token = self._peek()
            entry = _BINARY_PRECEDENCE.get(token.kind)
            if entry is None or entry[0] < min_prec:
                return left
            prec, op = entry
            self._advance()
            right = self._parse_binary_expr(prec + 1)
            left = ast.Binary(op, left, right, token.location)

    def _parse_unary_expr(self) -> ast.Expr:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.PLUS_PLUS or kind is TokenKind.MINUS_MINUS:
            self._advance()
            operand = self._parse_unary_expr()
            return ast.IncDec(token.text, operand, is_postfix=False, location=token.location)
        if kind in (TokenKind.MINUS, TokenKind.PLUS, TokenKind.BANG, TokenKind.TILDE,
                    TokenKind.STAR, TokenKind.AMP):
            self._advance()
            operand = self._parse_unary_expr()
            return ast.Unary(token.text, operand, token.location)
        if kind is TokenKind.KW_SIZEOF:
            self._advance()
            if self._at(TokenKind.LPAREN) and self._is_type_at(1):
                self._advance()
                qtype = self._parse_full_type()
                self._expect(TokenKind.RPAREN, "sizeof")
                return ast.SizeofType(qtype, token.location)
            operand = self._parse_unary_expr()
            return ast.SizeofExpr(operand, token.location)
        if kind is TokenKind.LPAREN and self._is_type_at(1):
            self._advance()
            target = self._parse_full_type()
            self._expect(TokenKind.RPAREN, "cast")
            operand = self._parse_unary_expr()
            return ast.Cast(target, operand, token.location)
        return self._parse_postfix_expr()

    def _is_type_at(self, offset: int) -> bool:
        kind = self._peek(offset).kind
        return kind in _TYPE_START_KINDS

    def _parse_full_type(self) -> CType:
        """A type name inside a cast or sizeof: specifier plus stars."""
        ctype = self._parse_type_specifier()
        while self._accept(TokenKind.STAR):
            ctype = PointerType(ctype)
        return ctype

    def _parse_postfix_expr(self) -> ast.Expr:
        expr = self._parse_primary_expr()
        while True:
            token = self._peek()
            kind = token.kind
            if kind is TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET, "subscript")
                expr = ast.Index(expr, index, token.location)
            elif kind is TokenKind.DOT:
                self._advance()
                name = self._expect(TokenKind.IDENT, "member access").text
                expr = ast.Member(expr, name, is_arrow=False, location=token.location)
            elif kind is TokenKind.ARROW:
                self._advance()
                name = self._expect(TokenKind.IDENT, "member access").text
                expr = ast.Member(expr, name, is_arrow=True, location=token.location)
            elif kind is TokenKind.PLUS_PLUS or kind is TokenKind.MINUS_MINUS:
                self._advance()
                expr = ast.IncDec(token.text, expr, is_postfix=True, location=token.location)
            else:
                return expr

    def _parse_primary_expr(self) -> ast.Expr:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.INT_LIT or kind is TokenKind.CHAR_LIT:
            self._advance()
            return ast.IntLiteral(token.value, token.location)
        if kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLiteral(token.value, token.location)
        if kind is TokenKind.STRING_LIT:
            self._advance()
            return ast.StringLiteral(token.value, token.location)
        if kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                self._advance()
                args: list[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept(TokenKind.COMMA):
                            break
                self._expect(TokenKind.RPAREN, "call")
                return ast.Call(token.value, args, token.location)
            return ast.Identifier(token.value, token.location)
        if kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "parenthesized expression")
            return expr
        raise ParseError(f"unexpected token {token.text or 'EOF'!r}", token.location)


def parse(source: str, filename: str = "<minic>") -> ast.Program:
    """Parse MiniC ``source`` into an (un-analyzed) :class:`ast.Program`."""
    tokens = tokenize(source, filename)
    return Parser(tokens).parse_program(source)
