"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``extract FILE``
    Run Phase I on a MiniC source file and print the FORAY model
    (optionally the annotated source and hints).

``suite [NAMES...]``
    Run the mini-MiBench evaluation and print Tables I–III plus the
    headline metric.

``figures``
    Reproduce all paper figure examples.

``spm FILE``
    Run the full Phase I+II flow on a source file and print the
    transformed FORAY model and the capacity sweep. ``--allocator``
    selects the buffer-selection policy (exact DP or a greedy ranking);
    ``--sweep`` takes an optional comma-separated capacity ladder.

``suite --spm``
    Append the per-workload SPM capacity/energy frontier to the tables.

``validate [NAMES...]``
    Cross-input validation over each workload's input-scenario matrix:
    extract the model on the profile scenario, replay every other
    scenario against it, and print per-scenario reports plus the
    stability table. Exits non-zero when a model fails the gate
    (full references must self-validate at 100%; ``--threshold`` adds a
    minimum cross-input accuracy).

``suite --validate``
    Append the cross-input stability table to the suite tables
    (``--scenarios N`` trims each workload's matrix to its first N
    scenarios; the same gate sets the exit code).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import (
    format_spm_frontier,
    format_stability_table,
    format_table1,
    format_table2,
    format_table3,
    summarize_headline,
)
from repro.foray.emitter import emit_model
from repro.foray.filters import FilterConfig
from repro.foray.hints import inlining_hints
from repro.lang.printer import to_source
from repro.pipeline import (
    PipelineConfig,
    SpmConfig,
    ValidationConfig,
    cached_exploration,
    extract_foray_model,
    full_flow,
    normalize_ladder,
    run_suite,
    validate_suite,
)
from repro.sim.machine import DEFAULT_ENGINE, ENGINES
from repro.spm.allocator import ALLOCATOR_POLICIES, AllocatorPolicy
from repro.spm.explore import DEFAULT_CAPACITIES
from repro.workloads.registry import FIGURE_WORKLOADS


def _add_filter_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nexec", type=int, default=20,
                        help="step-4 minimum executions (paper: 20)")
    parser.add_argument("--nloc", type=int, default=10,
                        help="step-4 minimum distinct locations (paper: 10)")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=ENGINES, default=DEFAULT_ENGINE,
                        help="execution engine (default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the compiled/extraction artifact cache")


def _add_spm_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--allocator", choices=ALLOCATOR_POLICIES,
                        default=AllocatorPolicy.DP.value,
                        help="buffer-selection policy (default: %(default)s)")


def _filter_from(args) -> FilterConfig:
    return FilterConfig(nexec=args.nexec, nloc=args.nloc)


def _parse_ladder(text: str | None) -> tuple[int, ...]:
    if not text or text == "default":
        return DEFAULT_CAPACITIES
    try:
        ladder = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"invalid capacity ladder {text!r}") from None
    # A 0-byte SPM is not a sweep point, and equivalent ladders must not
    # fragment the exploration cache: reject non-positive capacities and
    # return the canonical (sorted, deduplicated) form.
    if not ladder or any(capacity <= 0 for capacity in ladder):
        raise SystemExit(f"invalid capacity ladder {text!r}")
    return normalize_ladder(ladder)


def _spm_config_from(args) -> SpmConfig:
    return SpmConfig(
        spm_bytes=getattr(args, "spm_bytes", 4096),
        capacities=_parse_ladder(getattr(args, "sweep", None)),
        allocator=getattr(args, "allocator", AllocatorPolicy.DP.value),
        sweep=getattr(args, "sweep", None) is not None
        or getattr(args, "spm", False),
    )


def _add_validation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenarios", type=int, default=None, metavar="N",
                        help="limit each workload's matrix to its first N "
                             "scenarios (N >= 2: the profile plus at least "
                             "one replay; default: all declared)")
    parser.add_argument("--profile", default=None, metavar="SCENARIO",
                        help="extract the model on this scenario "
                             "(default: each workload's nominal scenario)")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="minimum acceptable cross-input accuracy "
                             "(exit 1 below it; default: %(default)s)")


def _validation_config_from(args, enabled: bool) -> ValidationConfig:
    return ValidationConfig(
        enabled=enabled,
        profile=getattr(args, "profile", None),
        max_scenarios=getattr(args, "scenarios", None),
        threshold=getattr(args, "threshold", 0.0),
    )


def _config_from(args) -> PipelineConfig:
    return PipelineConfig(
        engine=getattr(args, "engine", DEFAULT_ENGINE),
        jobs=getattr(args, "jobs", 1),
        cache=not getattr(args, "no_cache", False),
        filter_config=_filter_from(args),
        spm=_spm_config_from(args),
        validation=_validation_config_from(
            args, getattr(args, "validate", False)),
    )


def cmd_extract(args) -> int:
    source = open(args.file).read()
    result = extract_foray_model(source, config=_config_from(args))
    if args.annotated:
        print("/* annotated source */")
        print(to_source(result.compiled.program))
    print(emit_model(result.model))
    if args.hints:
        for hint in inlining_hints(result.model, result.compiled.program):
            print("hint:", hint.describe())
    stats = result.model.trace_stats
    print(
        f"/* {len(result.model.references)} references, "
        f"{result.model.loop_count} loops, "
        f"{stats.total_accesses} accesses profiled */"
    )
    return 0


def cmd_suite(args) -> int:
    names = tuple(args.names) or None
    config = _config_from(args)
    reports = run_suite(names, jobs=args.jobs, config=config)
    print(format_table1([r.census for r in reports]))
    print()
    print(format_table2([r.table2 for r in reports]))
    print()
    print(format_table3([r.table3 for r in reports]))
    print()
    print(summarize_headline([r.table2 for r in reports]))
    if args.spm:
        sweeps = {
            report.name: cached_exploration(
                report.extraction.compiled.source, config, report.model)
            for report in reports
        }
        print()
        print(format_spm_frontier(sweeps))
    if args.validate:
        results = _validate_or_exit(names, args, config)
        print()
        print(format_stability_table(results, threshold=args.threshold))
        if not all(r.passes(args.threshold) for r in results):
            return 1
    return 0


def _validate_or_exit(names, args, config):
    """Run the validation matrix, turning declaration errors (unknown
    scenario/profile, bad --scenarios) into a clean CLI exit."""
    try:
        return validate_suite(names, jobs=args.jobs, config=config)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"validate: {message}") from None


def cmd_validate(args) -> int:
    names = tuple(args.names) or None
    config = _config_from(args)
    results = _validate_or_exit(names, args, config)
    for result in results:
        print(f"=== {result.workload}: model from scenario "
              f"{result.profile!r} ===")
        print(f"  self ({result.profile}): "
              f"{result.self_validation.summary()}")
        for cell in result.cross:
            print(f"  {cell.scenario}: {cell.report.summary()}")
    print()
    print(format_stability_table(results, threshold=args.threshold))
    return 0 if all(r.passes(args.threshold) for r in results) else 1


def cmd_figures(args) -> int:
    relaxed = FilterConfig(nexec=1, nloc=1)
    for name, workload in FIGURE_WORKLOADS.items():
        print(f"=== {name}: {workload.description} ===")
        result = extract_foray_model(workload.source, relaxed)
        print(emit_model(result.model))
    return 0


def cmd_spm(args) -> int:
    source = open(args.file).read()
    config = _config_from(args)
    flow = full_flow(args.file, source, config=config)
    print(flow.report.extraction.foray_source)
    print(flow.transformed_source)
    points = flow.exploration
    if points is None:
        points = cached_exploration(source, config, flow.report.model,
                                    energy=flow.energy_model,
                                    graph=flow.graph)
    print(format_spm_frontier({args.file: points}))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FORAY-GEN (DATE 2005) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_extract = sub.add_parser("extract", help="Phase I on a MiniC file")
    p_extract.add_argument("file")
    p_extract.add_argument("--annotated", action="store_true",
                           help="also print the checkpoint-annotated source")
    p_extract.add_argument("--hints", action="store_true",
                           help="print function-duplication hints")
    _add_filter_args(p_extract)
    _add_engine_args(p_extract)
    p_extract.set_defaults(func=cmd_extract)

    p_suite = sub.add_parser("suite", help="Tables I-III on mini-MiBench")
    p_suite.add_argument("names", nargs="*",
                         help="benchmark subset (default: the full suite)")
    p_suite.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the suite "
                              "(0 = CPU count; default: serial)")
    p_suite.add_argument("--spm", action="store_true",
                         help="append the SPM capacity/energy frontier "
                              "per workload")
    p_suite.add_argument("--validate", action="store_true",
                         help="append the cross-input stability table "
                              "(scenario matrix)")
    _add_filter_args(p_suite)
    _add_engine_args(p_suite)
    _add_spm_args(p_suite)
    _add_validation_args(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_figures = sub.add_parser("figures", help="reproduce the paper figures")
    p_figures.set_defaults(func=cmd_figures)

    p_validate = sub.add_parser(
        "validate", help="cross-input validation over the scenario matrix")
    p_validate.add_argument("names", nargs="*",
                            help="workload subset (default: the full suite)")
    p_validate.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the (workload x "
                                 "scenario) matrix (0 = CPU count; "
                                 "default: serial)")
    _add_filter_args(p_validate)
    _add_engine_args(p_validate)
    _add_validation_args(p_validate)
    p_validate.set_defaults(func=cmd_validate, validate=True)

    p_spm = sub.add_parser("spm", help="Phases I+II on a MiniC file")
    p_spm.add_argument("file")
    p_spm.add_argument("--spm-bytes", type=int, default=4096)
    p_spm.add_argument("--sweep", nargs="?", const="default",
                       metavar="BYTES,BYTES,...",
                       help="sweep a capacity ladder (default ladder when "
                            "given without a value)")
    _add_filter_args(p_spm)
    _add_engine_args(p_spm)
    _add_spm_args(p_spm)
    p_spm.set_defaults(func=cmd_spm)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
