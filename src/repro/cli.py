"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``extract FILE``
    Run Phase I on a MiniC source file and print the FORAY model
    (optionally the annotated source and hints).

``suite [NAMES...]``
    Run the mini-MiBench evaluation and print Tables I–III plus the
    headline metric.

``static [NAMES...]``
    Compile-time FORAY analysis over the (workload × scenario) matrix:
    build the static affine-reuse model from the AST alone, extract the
    dynamic model, and diff the two through the differential oracle
    (exact agreement on every matched reference, no silent gaps, no
    phantoms, DP-allocation parity). Prints the Table II-style coverage
    table (``--json`` for the machine-readable payload) and exits
    non-zero with a readable diff report on any disagreement.

``lint [NAMES...]``
    MiniC semantic linter over every (workload × scenario) source (or
    arbitrary files via ``--file``): definite assignment before use,
    static array bounds, dead stores, unused variables/parameters,
    constant branch conditions and zero-trip/non-terminating loops —
    driven by the same dataflow framework the bytecode engine uses for
    guard elimination. Stable rule codes (L1xx errors, L2xx warnings),
    ``--json`` payload, non-zero exit on any error-severity finding.

``gen [--seeds N --profile SIZE --check NAME,... --jobs K]``
    Population-scale differential fuzzing: generate ``--seeds``
    consecutive seeded MiniC programs (``--profile small|medium|large``
    sets the size envelope) and run the differential check battery on
    each — engine parity, IR verification, lint, static-oracle
    agreement, allocator dominance, SPM traffic prediction, cross-input
    transfer. Failing programs are minimized by the subtree-deletion
    shrinker and reported with their replayable seed. ``--check``
    restricts the battery (the hidden ``seeded-bug`` check plants a
    static-model corruption to prove the harness catches divergence);
    ``--json`` emits the strict-JSON report. Exits non-zero on any
    check failure or harness error. Generated programs are also
    addressable as ``gen:<profile>:<seed>`` by every workload-resolving
    command.

``figures``
    Reproduce all paper figure examples.

``suite/spm --static-fast-path``
    Skip simulation for programs whose static model is provably complete
    and stats-exact; everything else falls back to the engine.

``... --verify-ir``
    Structurally verify the lowered and fused bytecode of every program
    before running it (register defined-before-use, jump targets,
    superinstruction decode, checkpoint ids). The test suite enables
    this unconditionally via ``REPRO_VERIFY_IR=1``.

``spm FILE``
    Run the full Phase I+II flow on a source file and print the
    transformed FORAY model and the capacity sweep. ``--allocator``
    selects the buffer-selection policy (exact DP or a greedy ranking);
    ``--sweep`` takes an optional comma-separated capacity ladder.

``suite --spm``
    Append the per-workload SPM capacity/energy frontier to the tables.

``validate [NAMES...]``
    Cross-input validation over each workload's input-scenario matrix:
    extract the model on the profile scenario, replay every other
    scenario against it, and print per-scenario reports plus the
    stability table. Exits non-zero when a model fails the gate
    (full references must self-validate at 100%; ``--threshold`` adds a
    minimum cross-input accuracy).

``suite --validate``
    Append the cross-input stability table to the suite tables
    (``--scenarios N`` trims each workload's matrix to its first N
    scenarios; the same gate sets the exit code).

``hier [NAMES...]``
    Cache-hierarchy co-simulation: stream every workload's trace through
    a configurable set-associative cache (``--line/--sets/--ways``, LRU,
    write-back or ``--write-through``, optional ``--l2 SETSxWAYSxLINE``)
    twice — once pure, once with the SPM allocation's address intervals
    bypassing the cache — and print the energy/miss-rate comparison.
    ``--sweep`` fans extra cache configs per cell and ``--scenarios N``
    widens the matrix over each workload's input scenarios.

``suite --hier``
    Append the memory-hierarchy comparison to the suite tables
    (``--hier-sweep`` sweeps cache configs, ``--scenarios N`` widens the
    scenario axis; cells are persisted in the ``hierarchy`` store
    namespace, so warm reruns simulate nothing).

``suite/validate/hier --json``
    Emit the run's report as machine-readable JSON on stdout instead of
    the human tables (exit codes and stderr counters are unchanged).

``cache stats|clear|path``
    Inspect or wipe the disk-backed artifact store. Pipeline commands
    persist their artifacts there by default (``--cache-dir DIR``
    overrides the location, ``$REPRO_CACHE_DIR`` sets the default,
    ``--no-disk-cache`` keeps a run memory-only), so repeat invocations
    and ``--jobs`` worker processes share compilation, simulation,
    extraction, sweep and validation results. ``suite`` and ``validate``
    print per-namespace hit/miss counters to stderr (stdout stays
    byte-identical to a cache-less run).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.analysis import jsonout
from repro.analysis.report import (
    format_fuzz_summary,
    format_hier_table,
    format_spm_frontier,
    format_stability_table,
    format_static_table,
    format_table1,
    format_table2,
    format_table3,
    summarize_headline,
)
from repro.cachesim.model import (
    DEFAULT_CACHE_SWEEP,
    CacheConfig,
    parse_cache_spec,
)
from repro.foray.emitter import emit_model
from repro.foray.filters import FilterConfig
from repro.foray.hints import inlining_hints
from repro.lang.printer import to_source
from repro.pipeline import (
    HierarchyConfig,
    PipelineConfig,
    SpmConfig,
    ValidationConfig,
    cached_exploration,
    extract_foray_model,
    full_flow,
    hier_suite,
    LintReport,
    lint_suite,
    normalize_ladder,
    persist_store_counters,
    run_suite,
    static_suite,
    store_for,
    validate_suite,
)
from repro.sim.machine import DEFAULT_ENGINE, ENGINES
from repro.spm.allocator import ALLOCATOR_POLICIES, AllocatorPolicy
from repro.spm.energy import EnergyModel
from repro.spm.explore import DEFAULT_CAPACITIES
from repro.store import (
    NAMESPACES,
    SCHEMA_VERSION,
    ArtifactStore,
    default_cache_dir,
)
from repro.workloads.registry import FIGURE_WORKLOADS


def _add_filter_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nexec", type=int, default=20,
                        help="step-4 minimum executions (paper: 20)")
    parser.add_argument("--nloc", type=int, default=10,
                        help="step-4 minimum distinct locations (paper: 10)")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=ENGINES, default=DEFAULT_ENGINE,
                        help="execution engine (default: %(default)s)")
    parser.add_argument("--no-fusion", action="store_true",
                        help="disable superinstruction fusion on the "
                             "bytecode engine (debug/timing aid)")
    parser.add_argument("--trace-block", type=int, default=None,
                        metavar="N",
                        help="accesses per columnar trace block "
                             "(default: engine default)")
    parser.add_argument("--verify-ir", action="store_true",
                        help="structurally verify the lowered and fused "
                             "bytecode before every run")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the compiled/extraction artifact cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk artifact store shared across processes "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="keep the artifact cache in-process only")


def _add_spm_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--allocator", choices=ALLOCATOR_POLICIES,
                        default=AllocatorPolicy.DP.value,
                        help="buffer-selection policy (default: %(default)s)")
    parser.add_argument("--energy", default=None, metavar="KEY=NJ,...",
                        help="override per-access energies, e.g. "
                             "main_read_nj=5.2,spm_read_nj=0.1 "
                             "(fields of EnergyModel; values in nJ)")


def _add_hier_args(parser: argparse.ArgumentParser,
                   sweep_flag: str = "--sweep") -> None:
    """Cache-hierarchy flags (``sweep_flag`` avoids colliding with the
    spm command's capacity-ladder ``--sweep``)."""
    parser.add_argument("--line", type=int, default=32, metavar="BYTES",
                        help="cache line size (default: %(default)s)")
    parser.add_argument("--sets", type=int, default=64,
                        help="number of cache sets (default: %(default)s)")
    parser.add_argument("--ways", type=int, default=2,
                        help="set associativity (default: %(default)s)")
    parser.add_argument("--write-through", action="store_true",
                        help="write-through/no-write-allocate instead of "
                             "write-back/write-allocate")
    parser.add_argument("--l2", default=None, metavar="SPEC",
                        help="add a second level, e.g. 256x4x64 "
                             "(SETSxWAYSxLINE[wt])")
    parser.add_argument(sweep_flag, dest="cache_sweep", nargs="?",
                        const="default", metavar="SPEC,SPEC,...",
                        help="sweep extra cache configs per cell "
                             "(default ladder when given without a value)")


def _add_json_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report on "
                             "stdout instead of the human tables")


def _filter_from(args) -> FilterConfig:
    return FilterConfig(nexec=args.nexec, nloc=args.nloc)


def _energy_from(args) -> EnergyModel:
    """Build the energy model from ``--energy KEY=NJ,...`` overrides.

    Unknown fields and non-numeric values exit cleanly, and the model's
    own validation rejects negative or NaN energies — a malformed
    override fails loudly instead of producing nonsense tables.
    """
    text = getattr(args, "energy", None)
    if not text:
        return EnergyModel()
    known = {field.name for field in dataclasses.fields(EnergyModel)}
    overrides: dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in known:
            raise SystemExit(
                f"invalid energy override {part!r}; known fields: "
                f"{', '.join(sorted(known))}"
            )
        try:
            overrides[key] = float(value)
        except ValueError:
            raise SystemExit(
                f"invalid energy override {part!r}: {value!r} is not a "
                "number"
            ) from None
    try:
        return EnergyModel(**overrides)
    except ValueError as error:
        raise SystemExit(f"invalid energy override: {error}") from None


def _parse_ladder(text: str | None) -> tuple[int, ...]:
    if not text or text == "default":
        return DEFAULT_CAPACITIES
    try:
        ladder = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"invalid capacity ladder {text!r}") from None
    # A 0-byte SPM is not a sweep point, and equivalent ladders must not
    # fragment the exploration cache: reject non-positive capacities and
    # return the canonical (sorted, deduplicated) form.
    if not ladder or any(capacity <= 0 for capacity in ladder):
        raise SystemExit(f"invalid capacity ladder {text!r}")
    return normalize_ladder(ladder)


def _spm_config_from(args) -> SpmConfig:
    return SpmConfig(
        spm_bytes=getattr(args, "spm_bytes", 4096),
        capacities=_parse_ladder(getattr(args, "sweep", None)),
        allocator=getattr(args, "allocator", AllocatorPolicy.DP.value),
        energy=_energy_from(args),
        sweep=getattr(args, "sweep", None) is not None
        or getattr(args, "spm", False),
    )


def _hier_config_from(args, enabled: bool) -> HierarchyConfig:
    # Specs are parsed (and rejected loudly) even when --hier is off:
    # `suite --hier-sweep bogus` without --hier must fail like a bad
    # --sweep ladder does, not silently drop the flag.
    try:
        l2_text = getattr(args, "l2", None)
        base = CacheConfig(
            line_bytes=getattr(args, "line", 32),
            sets=getattr(args, "sets", 64),
            ways=getattr(args, "ways", 2),
            write_back=not getattr(args, "write_through", False),
            l2=parse_cache_spec(l2_text) if l2_text else None,
        )
        sweep_text = getattr(args, "cache_sweep", None)
        if sweep_text is None:
            sweep: tuple[CacheConfig, ...] = ()
        elif sweep_text == "default":
            sweep = DEFAULT_CACHE_SWEEP
        else:
            sweep = tuple(
                parse_cache_spec(part)
                for part in sweep_text.split(",") if part.strip()
            )
            if not sweep:
                raise ValueError(f"empty cache sweep {sweep_text!r}")
    except ValueError as error:
        raise SystemExit(f"hier: {error}") from None
    # The hier command spells the scenario axis --scenarios (its own
    # dest); on `suite --hier` the validation-style --scenarios widens
    # the hierarchy matrix too, so the two appended matrices stay in
    # step with one flag.
    max_scenarios = getattr(args, "hier_scenarios", None)
    if max_scenarios is None:
        max_scenarios = getattr(args, "scenarios", None)
    if enabled and max_scenarios is not None and max_scenarios < 1:
        raise SystemExit(
            f"hier: --scenarios must be >= 1, got {max_scenarios}"
        )
    return HierarchyConfig(enabled=enabled, cache=base, sweep=sweep,
                           max_scenarios=max_scenarios if enabled else None)


def _add_validation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenarios", type=int, default=None, metavar="N",
                        help="limit each workload's validation matrix to "
                             "its first N scenarios (N >= 2: the profile "
                             "plus at least one replay; default: all "
                             "declared) — with --hier, also widens the "
                             "hierarchy matrix to N scenarios")
    parser.add_argument("--profile", default=None, metavar="SCENARIO",
                        help="extract the model on this scenario "
                             "(default: each workload's nominal scenario)")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="minimum acceptable cross-input accuracy "
                             "(exit 1 below it; default: %(default)s)")


def _validation_config_from(args, enabled: bool) -> ValidationConfig:
    return ValidationConfig(
        enabled=enabled,
        profile=getattr(args, "profile", None),
        max_scenarios=getattr(args, "scenarios", None),
        threshold=getattr(args, "threshold", 0.0),
    )


def _cache_dir_from(args) -> str | None:
    """The disk-store root for a run: an explicit ``--cache-dir`` wins,
    ``--no-disk-cache`` disables the tier, otherwise the environment
    default applies (CLI invocations are cross-process by nature, so the
    disk tier is on by default)."""
    if getattr(args, "no_disk_cache", False):
        return None
    return getattr(args, "cache_dir", None) or default_cache_dir()


def _config_from(args) -> PipelineConfig:
    jobs = getattr(args, "jobs", None)
    trace_block = getattr(args, "trace_block", None)
    return PipelineConfig(
        engine=getattr(args, "engine", DEFAULT_ENGINE),
        jobs=jobs if jobs is not None else 1,
        cache=not getattr(args, "no_cache", False),
        cache_dir=_cache_dir_from(args),
        fusion=not getattr(args, "no_fusion", False),
        **({"trace_block": trace_block} if trace_block else {}),
        filter_config=_filter_from(args),
        spm=_spm_config_from(args),
        validation=_validation_config_from(
            args, getattr(args, "validate", False)),
        hierarchy=_hier_config_from(args, getattr(args, "hier", False)),
        static_fast_path=getattr(args, "static_fast_path", False),
        verify_ir=getattr(args, "verify_ir", False),
    )


def cmd_extract(args) -> int:
    source = open(args.file).read()
    result = extract_foray_model(source, config=_config_from(args))
    if args.annotated:
        print("/* annotated source */")
        print(to_source(result.compiled.program))
    print(emit_model(result.model))
    if args.hints:
        for hint in inlining_hints(result.model, result.compiled.program):
            print("hint:", hint.describe())
    stats = result.model.trace_stats
    print(
        f"/* {len(result.model.references)} references, "
        f"{result.model.loop_count} loops, "
        f"{stats.total_accesses} accesses profiled */"
    )
    persist_store_counters(_config_from(args))
    return 0


def _report_cache_counters(config: PipelineConfig, before) -> None:
    """Flush and print this run's disk-cache hit/miss counters.

    Counters go to *stderr* so stdout (the tables) stays byte-identical
    whether the disk cache is on, off, cold or warm. ``before`` is the
    aggregate snapshot taken ahead of the run; the printed numbers are
    the delta, which includes any ``--jobs`` worker processes (each
    worker persists its own tally before the pool joins).
    """
    store = store_for(config)
    if store is None:
        return
    persist_store_counters(config)
    after = store.aggregate_counters()
    for namespace in NAMESPACES:
        prev = (before or {}).get(namespace, {})
        cur = after.get(namespace, {})
        hits, misses, stored = (
            max(0, cur.get(field, 0) - prev.get(field, 0))
            for field in ("hits", "misses", "stores")
        )
        print(f"cache[{namespace}]: {hits} hits, {misses} misses, "
              f"{stored} stored", file=sys.stderr)
    print(f"cache dir: {store.path}", file=sys.stderr)


def cmd_suite(args) -> int:
    names = tuple(args.names) or None
    config = _config_from(args)
    store = store_for(config)
    before = store.aggregate_counters() if store else None
    exit_code = 0
    reports = run_suite(names, jobs=args.jobs, config=config)
    if not args.json:
        # Human mode prints the finished tables before any optional
        # extra (--spm sweep, --validate, --hier) runs: a failure in an
        # appended matrix must not discard an already-computed suite
        # run (--json needs the whole payload, so it stays
        # all-or-nothing by construction).
        print(format_table1([r.census for r in reports]))
        print()
        print(format_table2([r.table2 for r in reports]))
        print()
        print(format_table3([r.table3 for r in reports]))
        print()
        print(summarize_headline([r.table2 for r in reports]))
    sweeps = None
    if args.spm:
        sweeps = {
            report.name: cached_exploration(
                report.extraction.compiled.source, config, report.model)
            for report in reports
        }
        if not args.json:
            print()
            print(format_spm_frontier(sweeps))
    validations = hierarchy = None
    if args.validate:
        validations = _validate_or_exit(names, args, config)
        if not all(r.passes(args.threshold) for r in validations):
            exit_code = 1
    if args.hier:
        hierarchy = _hier_or_exit(names, args, config)
    if args.json:
        print(json.dumps(jsonout.suite_payload(
            reports, sweeps=sweeps, validations=validations,
            hierarchy=hierarchy, threshold=args.threshold), indent=2))
    else:
        if validations is not None:
            print()
            print(format_stability_table(validations,
                                         threshold=args.threshold))
        if hierarchy is not None:
            print()
            print(format_hier_table(hierarchy))
    _report_cache_counters(config, before)
    return exit_code


def _validate_or_exit(names, args, config):
    """Run the validation matrix, turning declaration errors (unknown
    scenario/profile, bad --scenarios) into a clean CLI exit."""
    try:
        return validate_suite(names, jobs=args.jobs, config=config)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"validate: {message}") from None


def _hier_or_exit(names, args, config):
    """Run the hierarchy matrix, turning declaration errors (unknown
    workload names) into a clean CLI exit."""
    try:
        return hier_suite(names, jobs=args.jobs, config=config)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"hier: {message}") from None


def cmd_validate(args) -> int:
    names = tuple(args.names) or None
    config = _config_from(args)
    store = store_for(config)
    before = store.aggregate_counters() if store else None
    results = _validate_or_exit(names, args, config)
    if args.json:
        print(json.dumps(jsonout.validate_payload(results, args.threshold),
                         indent=2))
    else:
        for result in results:
            print(f"=== {result.workload}: model from scenario "
                  f"{result.profile!r} ===")
            print(f"  self ({result.profile}): "
                  f"{result.self_validation.summary()}")
            for cell in result.cross:
                print(f"  {cell.scenario}: {cell.report.summary()}")
        print()
        print(format_stability_table(results, threshold=args.threshold))
    _report_cache_counters(config, before)
    return 0 if all(r.passes(args.threshold) for r in results) else 1


def cmd_hier(args) -> int:
    names = tuple(args.names) or None
    config = _config_from(args)
    store = store_for(config)
    before = store.aggregate_counters() if store else None
    results = _hier_or_exit(names, args, config)
    if args.json:
        print(json.dumps(jsonout.hier_payload(results), indent=2))
    else:
        print(format_hier_table(results))
    _report_cache_counters(config, before)
    return 0


def cmd_static(args) -> int:
    names = tuple(args.names) or None
    config = _config_from(args)
    store = store_for(config)
    before = store.aggregate_counters() if store else None
    try:
        reports = static_suite(names, jobs=args.jobs, config=config)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"static: {message}") from None
    if args.json:
        print(json.dumps(jsonout.static_payload(reports), indent=2))
    else:
        print(format_static_table(reports))
    failures = [line for report in reports
                for line in report.oracle.diff_lines()]
    if failures:
        print("static-vs-dynamic disagreement:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
    _report_cache_counters(config, before)
    return 1 if failures else 0


def cmd_lint(args) -> int:
    from repro.lang.lint import lint_source

    if args.files:
        if args.names:
            raise SystemExit("lint: give workload names or --file, not both")
        reports = [
            LintReport(path, "", tuple(lint_source(open(path).read(), path)))
            for path in args.files
        ]
    else:
        try:
            reports = lint_suite(tuple(args.names) or None)
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            raise SystemExit(f"lint: {message}") from None
    if args.json:
        print(json.dumps(jsonout.lint_payload(reports), indent=2))
    else:
        for report in reports:
            for finding in report.findings:
                print(finding.format(report.label))
        errors = sum(report.error_count for report in reports)
        warnings = sum(report.warning_count for report in reports)
        print(f"{len(reports)} source(s) linted: "
              f"{errors} error(s), {warnings} warning(s)")
    return 1 if any(report.error_count for report in reports) else 0


def _checks_from(args) -> tuple[str, ...]:
    """``--check`` values, repeatable and comma-splittable; the full
    battery when none given. Unknown names are rejected by the harness
    with the known list."""
    from repro.gen.fuzz import FUZZ_CHECKS

    if not args.check:
        return FUZZ_CHECKS
    return tuple(
        part.strip()
        for value in args.check
        for part in value.split(",") if part.strip()
    )


def cmd_gen(args) -> int:
    from repro.gen.fuzz import run_fuzz

    config = _config_from(args)
    store = store_for(config)
    before = store.aggregate_counters() if store else None
    try:
        report = run_fuzz(
            args.gen_profile, seeds=args.seeds, seed_start=args.seed_start,
            checks=_checks_from(args), jobs=args.jobs,
            shrink=not args.no_shrink, config=config)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"gen: {message}") from None
    if args.json:
        print(json.dumps(jsonout.gen_payload(report), indent=2))
    else:
        print(format_fuzz_summary(report))
    _report_cache_counters(config, before)
    return 0 if report.ok else 1


def cmd_figures(args) -> int:
    relaxed = FilterConfig(nexec=1, nloc=1)
    for name, workload in FIGURE_WORKLOADS.items():
        print(f"=== {name}: {workload.description} ===")
        result = extract_foray_model(workload.source, relaxed)
        print(emit_model(result.model))
    return 0


def cmd_spm(args) -> int:
    source = open(args.file).read()
    config = _config_from(args)
    flow = full_flow(args.file, source, config=config)
    print(flow.report.extraction.foray_source)
    print(flow.transformed_source)
    points = flow.exploration
    if points is None:
        points = cached_exploration(source, config, flow.report.model,
                                    energy=flow.energy_model,
                                    graph=flow.graph)
    print(format_spm_frontier({args.file: points}))
    persist_store_counters(config)
    return 0


def cmd_cache(args) -> int:
    store = ArtifactStore(args.cache_dir or default_cache_dir())
    if args.action == "path":
        print(store.path)
    elif args.action == "clear":
        print(f"cleared {store.clear()} entries from {store.path}")
    else:  # stats
        entries = store.entry_stats()
        counters = store.aggregate_counters()
        print(f"artifact store: {store.path} (schema v{SCHEMA_VERSION})")
        print(f"{'namespace':<12} {'entries':>8} {'bytes':>12} "
              f"{'hits':>8} {'misses':>8} {'stored':>8}")
        total_entries = total_bytes = 0
        for namespace in NAMESPACES:
            count, size = entries.get(namespace, (0, 0))
            tally = counters.get(namespace, {})
            total_entries += count
            total_bytes += size
            print(f"{namespace:<12} {count:>8} {size:>12} "
                  f"{tally.get('hits', 0):>8} {tally.get('misses', 0):>8} "
                  f"{tally.get('stores', 0):>8}")
        print(f"{'total':<12} {total_entries:>8} {total_bytes:>12}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FORAY-GEN (DATE 2005) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_extract = sub.add_parser("extract", help="Phase I on a MiniC file")
    p_extract.add_argument("file")
    p_extract.add_argument("--annotated", action="store_true",
                           help="also print the checkpoint-annotated source")
    p_extract.add_argument("--hints", action="store_true",
                           help="print function-duplication hints")
    _add_filter_args(p_extract)
    _add_engine_args(p_extract)
    p_extract.set_defaults(func=cmd_extract)

    p_suite = sub.add_parser("suite", help="Tables I-III on mini-MiBench")
    p_suite.add_argument("names", nargs="*",
                         help="benchmark subset (default: the full suite)")
    p_suite.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the suite "
                              "(0 = CPU count; default: serial)")
    p_suite.add_argument("--spm", action="store_true",
                         help="append the SPM capacity/energy frontier "
                              "per workload")
    p_suite.add_argument("--validate", action="store_true",
                         help="append the cross-input stability table "
                              "(scenario matrix)")
    p_suite.add_argument("--hier", action="store_true",
                         help="append the memory-hierarchy comparison "
                              "(pure cache vs SPM+cache)")
    p_suite.add_argument("--static-fast-path", action="store_true",
                         help="skip simulation for programs the static "
                              "analyzer models completely and exactly")
    _add_filter_args(p_suite)
    _add_engine_args(p_suite)
    _add_spm_args(p_suite)
    _add_validation_args(p_suite)
    _add_hier_args(p_suite, sweep_flag="--hier-sweep")
    _add_json_arg(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_static = sub.add_parser(
        "static", help="compile-time FORAY model + differential oracle")
    p_static.add_argument("names", nargs="*",
                          help="workload subset (default: the full suite)")
    p_static.add_argument("--jobs", type=int, default=None,
                          help="worker processes for the (workload x "
                               "scenario) matrix (0 = CPU count; "
                               "default: serial)")
    _add_filter_args(p_static)
    _add_engine_args(p_static)
    _add_json_arg(p_static)
    p_static.set_defaults(func=cmd_static)

    p_lint = sub.add_parser(
        "lint", help="MiniC semantic linter (dataflow-driven)")
    p_lint.add_argument("names", nargs="*",
                        help="workload subset (default: every workload x "
                             "scenario source in the suite)")
    p_lint.add_argument("--file", dest="files", action="append", default=[],
                        metavar="PATH",
                        help="lint a MiniC source file instead of the "
                             "registered workloads (repeatable)")
    _add_json_arg(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_gen = sub.add_parser(
        "gen", help="seeded program generation + differential fuzzing")
    p_gen.add_argument("--seeds", type=int, default=100,
                       help="number of consecutive seeds to fuzz "
                            "(default: %(default)s)")
    p_gen.add_argument("--seed-start", type=int, default=0, metavar="N",
                       help="first seed of the range (default: %(default)s)")
    p_gen.add_argument("--profile", dest="gen_profile", default="small",
                       metavar="SIZE",
                       help="generator size profile: small, medium or "
                            "large (default: %(default)s)")
    p_gen.add_argument("--check", action="append", default=None,
                       metavar="NAME[,NAME...]",
                       help="run only these checks (repeatable; default: "
                            "parity, ir, lint, static, alloc, traffic, "
                            "transfer)")
    p_gen.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the seed range "
                            "(0 = CPU count; default: serial)")
    p_gen.add_argument("--no-shrink", action="store_true",
                       help="report failures without minimizing them")
    _add_filter_args(p_gen)
    _add_engine_args(p_gen)
    _add_json_arg(p_gen)
    p_gen.set_defaults(func=cmd_gen)

    p_figures = sub.add_parser("figures", help="reproduce the paper figures")
    p_figures.set_defaults(func=cmd_figures)

    p_validate = sub.add_parser(
        "validate", help="cross-input validation over the scenario matrix")
    p_validate.add_argument("names", nargs="*",
                            help="workload subset (default: the full suite)")
    p_validate.add_argument("--jobs", type=int, default=None,
                            help="worker processes for the (workload x "
                                 "scenario) matrix (0 = CPU count; "
                                 "default: serial)")
    _add_filter_args(p_validate)
    _add_engine_args(p_validate)
    _add_validation_args(p_validate)
    _add_json_arg(p_validate)
    p_validate.set_defaults(func=cmd_validate, validate=True)

    p_hier = sub.add_parser(
        "hier", help="cache co-simulation: pure cache vs SPM+cache")
    p_hier.add_argument("names", nargs="*",
                        help="workload subset (default: the full suite)")
    p_hier.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the (workload x "
                             "scenario x cache-config) matrix "
                             "(0 = CPU count; default: serial)")
    p_hier.add_argument("--spm-bytes", type=int, default=4096,
                        help="SPM capacity of the hybrid configuration "
                             "(default: %(default)s)")
    p_hier.add_argument("--scenarios", dest="hier_scenarios", type=int,
                        default=None, metavar="N",
                        help="widen each workload's matrix to its first "
                             "N input scenarios (default: the nominal "
                             "profiling scenario only)")
    _add_filter_args(p_hier)
    _add_engine_args(p_hier)
    _add_spm_args(p_hier)
    _add_hier_args(p_hier)
    _add_json_arg(p_hier)
    p_hier.set_defaults(func=cmd_hier, hier=True)

    p_spm = sub.add_parser("spm", help="Phases I+II on a MiniC file")
    p_spm.add_argument("file")
    p_spm.add_argument("--spm-bytes", type=int, default=4096)
    p_spm.add_argument("--static-fast-path", action="store_true",
                       help="skip simulation when the static analyzer "
                            "models the program completely and exactly")
    p_spm.add_argument("--sweep", nargs="?", const="default",
                       metavar="BYTES,BYTES,...",
                       help="sweep a capacity ladder (default ladder when "
                            "given without a value)")
    _add_filter_args(p_spm)
    _add_engine_args(p_spm)
    _add_spm_args(p_spm)
    p_spm.set_defaults(func=cmd_spm)

    p_cache = sub.add_parser(
        "cache", help="inspect or wipe the disk artifact store")
    p_cache.add_argument("action", choices=("stats", "clear", "path"),
                         help="stats: entry counts and hit/miss tallies; "
                              "clear: remove every entry; path: print the "
                              "resolved store directory")
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="store location (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
