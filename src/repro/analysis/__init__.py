"""Measurement and reporting: the data behind the paper's Tables I-III."""

from repro.analysis.census import LoopCensus, count_lines, loop_census
from repro.analysis.coverage import (
    ForayFormCoverage,
    MemoryBehavior,
    table2_coverage,
    table3_behavior,
)
from repro.analysis.report import (
    format_table1,
    format_table2,
    format_table3,
    summarize_headline,
)

__all__ = [
    "LoopCensus",
    "count_lines",
    "loop_census",
    "ForayFormCoverage",
    "MemoryBehavior",
    "table2_coverage",
    "table3_behavior",
    "format_table1",
    "format_table2",
    "format_table3",
    "summarize_headline",
]
