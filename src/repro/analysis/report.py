"""Paper-style text rendering of Tables I–III, the SPM capacity/energy
frontier, the cross-input stability table, the memory-hierarchy
comparison, and paper comparisons."""

from __future__ import annotations

from repro.analysis.census import LoopCensus
from repro.analysis.coverage import ForayFormCoverage, MemoryBehavior
from repro.analysis.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.cachesim.report import HierarchyReport
from repro.foray.validate import WorkloadValidation
from repro.spm.explore import ExplorationPoint, pareto_frontier


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    return "\n".join([line, rule, *body])


def format_table1(rows: list[LoopCensus], with_paper: bool = True) -> str:
    """Table I: benchmark complexity and loop distribution."""
    headers = ["benchmark", "lines", "loops", "for%", "while%", "do%"]
    if with_paper:
        headers += ["paper:loops", "paper:for%", "paper:while%", "paper:do%"]
    body = []
    for row in rows:
        cells = [
            row.name,
            str(row.lines),
            str(row.total_loops),
            f"{row.for_pct:.0f}",
            f"{row.while_pct:.0f}",
            f"{row.do_pct:.0f}",
        ]
        if with_paper:
            paper = PAPER_TABLE1.get(row.name)
            if paper is not None:
                cells += [
                    str(paper.total_loops),
                    f"{paper.for_pct:.0f}",
                    f"{paper.while_pct:.0f}",
                    f"{paper.do_pct:.0f}",
                ]
            else:
                cells += ["-", "-", "-", "-"]
        body.append(cells)
    return _table(headers, body)


def format_table2(rows: list[ForayFormCoverage], with_paper: bool = True) -> str:
    """Table II: loops and references converted into FORAY form."""
    headers = [
        "benchmark", "loops", "refs", "loops-not-src%", "refs-not-src%", "ratio",
    ]
    if with_paper:
        headers += ["paper:loops-not%", "paper:refs-not%"]
    body = []
    for row in rows:
        ratio = row.improvement_ratio
        cells = [
            row.name,
            str(row.loops_in_model),
            str(row.refs_in_model),
            f"{row.loops_not_in_source_form_pct:.0f}",
            f"{row.refs_not_in_source_form_pct:.0f}",
            "inf" if ratio == float("inf") else f"{ratio:.2f}",
        ]
        if with_paper:
            paper = PAPER_TABLE2.get(row.name)
            if paper is not None:
                cells += [
                    f"{paper.loops_not_in_form_pct:.0f}",
                    f"{paper.refs_not_in_form_pct:.0f}",
                ]
            else:
                cells += ["-", "-"]
        body.append(cells)
    return _table(headers, body)


def format_table3(rows: list[MemoryBehavior], with_paper: bool = True) -> str:
    """Table III: memory behaviour of the FORAY models."""
    headers = [
        "benchmark", "refs", "accesses", "footprint",
        "model:ref%", "model:acc%", "model:fp%",
        "lib:ref%", "lib:acc%", "lib:fp%",
    ]
    if with_paper:
        headers += ["paper:acc%", "paper:fp%"]
    body = []
    for row in rows:
        cells = [
            row.name,
            str(row.total_references),
            str(row.total_accesses),
            str(row.total_footprint),
            f"{row.model_refs_pct:.1f}",
            f"{row.model_accesses_pct:.0f}",
            f"{row.model_footprint_pct:.0f}",
            f"{row.lib_refs_pct:.0f}",
            f"{row.lib_accesses_pct:.0f}",
            f"{row.lib_footprint_pct:.0f}",
        ]
        if with_paper:
            paper = PAPER_TABLE3.get(row.name)
            if paper is not None:
                cells += [
                    f"{paper.model_accesses_pct:.0f}",
                    f"{paper.model_footprint_pct:.0f}",
                ]
            else:
                cells += ["-", "-"]
        body.append(cells)
    return _table(headers, body)


def format_spm_frontier(
    sweeps: dict[str, list[ExplorationPoint]]
) -> str:
    """Per-workload SPM capacity sweep: energy saving vs. SPM bytes.

    Pareto-optimal points (no smaller capacity achieves the saving) are
    marked ``*`` — the frontier a designer would pick a capacity from.
    """
    headers = [
        "benchmark", "SPM bytes", "buffers", "used", "saved nJ", "saving",
        "pareto",
    ]
    body: list[list[str]] = []
    for name, points in sweeps.items():
        frontier = {point.capacity_bytes for point in pareto_frontier(points)}
        for point in points:
            body.append([
                name,
                str(point.capacity_bytes),
                str(point.buffer_count),
                str(point.used_bytes),
                f"{point.benefit_nj:.0f}",
                f"{point.saving_fraction:.1%}",
                "*" if point.capacity_bytes in frontier else "",
            ])
    policy = next(
        (points[0].policy for points in sweeps.values() if points), "dp"
    )
    table = _table(headers, body)
    return f"SPM capacity sweep (allocator: {policy})\n{table}"


def format_stability_table(
    results: list[WorkloadValidation], threshold: float = 0.0
) -> str:
    """Cross-input stability of the extracted models (scenario matrix).

    One row per workload: the model is extracted on the *profile*
    scenario, replayed against every other scenario, and scored per
    reference. ``self%`` is the full-reference accuracy on the profiling
    input itself (must be 100 by construction); ``min%``/``mean%``
    aggregate the cross-input overall accuracy; ``worst ref`` names the
    least-predictable exercised reference and the scenario that exposed
    it; ``unex`` is the worst-case count of model references a replay
    never exercised.
    """
    headers = [
        "benchmark", "profile", "scen", "self-full%", "min%", "mean%",
        "worst ref", "unex", "status",
    ]
    body: list[list[str]] = []
    for result in results:
        worst = result.worst_reference()
        if worst is None:
            worst_text = "-"
        else:
            scenario, validation = worst
            worst_text = (
                f"{validation.reference.array_name} "
                f"{validation.accuracy:.0%} ({scenario})"
            )
        body.append([
            result.workload,
            result.profile,
            str(result.scenario_count),
            f"{result.self_validation.full_accuracy:.1%}",
            f"{result.min_accuracy:.1%}",
            f"{result.mean_accuracy:.1%}",
            worst_text,
            str(result.max_unexercised),
            "ok" if result.passes(threshold) else "LOW",
        ])
    table = _table(headers, body)
    return (
        "Cross-input stability (model from the profile scenario, replayed "
        "on every other scenario)\n" + table
    )


def format_hier_table(reports: list[HierarchyReport]) -> str:
    """Memory-hierarchy comparison: pure cache vs SPM + cache.

    One row per (workload, scenario, cache-config) matrix cell. ``main``
    is the all-main-memory baseline; ``cache nJ`` the pure-cache run;
    ``spm+cache nJ`` the hybrid with the SPM allocation's intervals
    bypassing the cache; ``saving`` the hybrid's energy saving over the
    pure cache, and ``spm`` marks cells where SPM+cache wins outright.
    """
    headers = [
        "benchmark", "scenario", "cache", "accesses", "L1miss%",
        "main words", "main nJ", "cache nJ", "spm+cache nJ", "spm B",
        "saving", "spm",
    ]
    body: list[list[str]] = []
    for report in reports:
        body.append([
            report.workload,
            report.scenario,
            report.cache_config.spec(),
            str(report.cache.accesses),
            f"{report.cache.l1_miss_rate:.1%}",
            str(report.cache.main_words),
            f"{report.baseline_main_nj:.0f}",
            f"{report.cache_nj:.0f}",
            f"{report.hybrid_nj:.0f}",
            str(report.spm_buffer_bytes),
            f"{report.hybrid_saving_fraction:.1%}",
            "*" if report.spm_win else "",
        ])
    spm_bytes = reports[0].spm_bytes if reports else 0
    policy = reports[0].policy if reports else "dp"
    table = _table(headers, body)
    return (
        "Memory-hierarchy comparison (pure cache vs SPM+cache, "
        f"spm={spm_bytes}B, allocator: {policy})\n{table}"
    )


def format_static_table(reports) -> str:
    """Static-analysis coverage (Table II, model level).

    One row per (workload, scenario) cell of the static matrix
    (:func:`repro.pipeline.static_suite`). ``matched`` counts dynamic
    references the compile-time model reproduces exactly; ``gap`` the
    FORAY-form references only the dynamic approach could model (the
    paper's Table II argument); ``refused`` every reference the static
    analyzer explicitly declined; ``fast`` marks programs the pipeline
    may run without any simulation; ``oracle`` is the differential
    verdict (exact agreement on every matched reference, no silent gaps,
    no phantoms, DP-allocation parity).
    """
    headers = [
        "benchmark", "scenario", "dyn-refs", "matched", "cov%",
        "gap", "refused", "fast", "oracle",
    ]
    body: list[list[str]] = []
    for report in reports:
        oracle = report.oracle
        body.append([
            report.name,
            report.scenario,
            str(oracle.dynamic_total),
            str(oracle.matched),
            f"{100.0 * oracle.coverage:.0f}",
            str(len(oracle.foray_gap)),
            str(report.static.refused_count),
            "*" if report.static.fast_path_ok else "",
            "ok" if oracle.ok else "FAIL",
        ])
    table = _table(headers, body)
    return (
        "Static affine reuse analysis (compile-time model vs dynamic "
        "extraction)\n" + table
    )


def format_fuzz_summary(report) -> str:
    """Population summary of one fuzzing run
    (a :class:`repro.gen.fuzz.FuzzReport`): the per-check pass/fail/skip
    census, the cross-input accuracy statistic, and a triage block per
    failing program (seed, failing check, minimized reproducer)."""
    cached = sum(1 for outcome in report.outcomes if outcome.cached)
    lines = [
        f"fuzz: profile={report.profile} programs={report.total} "
        f"failures={len(report.failures)} errors={len(report.errors)}"
        + (f" (cached: {cached})" if cached else "")
    ]
    counts = report.check_counts()
    body = [
        [name, str(tally.get("pass", 0)), str(tally.get("fail", 0)),
         str(tally.get("skip", 0))]
        for name, tally in counts.items()
    ]
    lines.append(_table(["check", "pass", "fail", "skip"], body))
    transfer = report.transfer_stats()
    if transfer is not None:
        measured, lowest, mean = transfer
        lines.append(
            f"cross-input accuracy: mean {mean:.4f}, min {lowest:.4f} "
            f"over {measured} measured program(s)")
    for outcome in report.failures:
        failing = next((check for check in outcome.checks
                        if check.name == outcome.failing_check), None)
        detail = f": {failing.detail}" if failing and failing.detail else ""
        lines.append(f"FAIL {outcome.spec} [{outcome.failing_check}]{detail}")
        lines.append(
            f"  replay: repro gen --profile {outcome.profile} "
            f"--seed-start {outcome.seed} --seeds 1")
        if outcome.shrunk_source:
            lines.append(
                f"  minimized reproducer ({outcome.shrunk_lines} lines, "
                f"from {outcome.source_lines}):")
            lines.extend("  | " + text
                         for text in outcome.shrunk_source.splitlines())
    for outcome in report.errors:
        lines.append(f"ERROR {outcome.spec}: {outcome.error}")
    return "\n".join(lines)


def summarize_headline(rows: list[ForayFormCoverage]) -> str:
    """The paper's headline metric: average improvement in analyzable refs."""
    finite = [r.improvement_ratio for r in rows if r.improvement_ratio != float("inf")]
    total_model = sum(r.refs_in_model for r in rows)
    total_static = sum(r.refs_in_source_form for r in rows)
    overall = total_model / total_static if total_static else float("inf")
    lines = [
        f"analyzable references: {total_static} static -> {total_model} with "
        f"FORAY-GEN ({'inf' if overall == float('inf') else f'{overall:.2f}x'})",
    ]
    if finite:
        mean = sum(finite) / len(finite)
        lines.append(
            f"mean per-benchmark improvement (finite ratios): {mean:.2f}x "
            "(paper: ~2x)"
        )
    return "\n".join(lines)
