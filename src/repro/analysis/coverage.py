"""Coverage metrics: Tables II and III of the paper.

Table II: of the loops/references that FORAY-GEN put in the model, how many
were *already* in FORAY form in the source (i.e. visible to the static
baseline of :mod:`repro.staticfar`)? The complement is the paper's
"% not in FORAY form in the original program", and the ratio
model/static is the paper's headline "two times increase in the number of
analyzable memory references".

Table III: how much of the program's memory behaviour (references,
accesses, footprint) the FORAY model captures, versus system-library
references and everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.foray.extractor import TraceStats
from repro.foray.model import ForayModel
from repro.sim.trace import node_id_of_pc
from repro.staticfar.detector import StaticAnalysisResult


def _pct(numerator: float, denominator: float) -> float:
    return 100.0 * numerator / denominator if denominator else 0.0


@dataclass(frozen=True)
class ForayFormCoverage:
    """One row of Table II."""

    name: str
    loops_in_model: int
    refs_in_model: int
    #: Model loops/refs the static baseline already sees (source FORAY form).
    loops_in_source_form: int
    refs_in_source_form: int

    @property
    def loops_not_in_source_form_pct(self) -> float:
        return _pct(self.loops_in_model - self.loops_in_source_form,
                    self.loops_in_model)

    @property
    def refs_not_in_source_form_pct(self) -> float:
        return _pct(self.refs_in_model - self.refs_in_source_form,
                    self.refs_in_model)

    @property
    def improvement_ratio(self) -> float:
        """FORAY-GEN analyzable refs over statically analyzable refs
        (the paper's headline metric; inf when static sees nothing)."""
        if self.refs_in_source_form == 0:
            return float("inf") if self.refs_in_model else 1.0
        return self.refs_in_model / self.refs_in_source_form


def table2_coverage(
    name: str, model: ForayModel, static_result: StaticAnalysisResult
) -> ForayFormCoverage:
    loops_in_source_form = sum(
        1 for loop in model.loops if static_result.is_canonical_loop(loop.ast_node_id)
    )
    refs_in_source_form = sum(
        1
        for ref in model.references
        if static_result.is_analyzable_ref(node_id_of_pc(ref.pc))
    )
    return ForayFormCoverage(
        name=name,
        loops_in_model=len(model.loops),
        refs_in_model=len(model.references),
        loops_in_source_form=loops_in_source_form,
        refs_in_source_form=refs_in_source_form,
    )


@dataclass(frozen=True)
class MemoryBehavior:
    """One row of Table III."""

    name: str
    total_references: int
    total_accesses: int
    total_footprint: int
    model_references: int
    model_accesses: int
    model_footprint: int
    lib_references: int
    lib_accesses: int
    lib_footprint: int

    # -- percentage views (the paper reports percentages) -------------

    @property
    def model_refs_pct(self) -> float:
        return _pct(self.model_references, self.total_references)

    @property
    def model_accesses_pct(self) -> float:
        return _pct(self.model_accesses, self.total_accesses)

    @property
    def model_footprint_pct(self) -> float:
        return _pct(self.model_footprint, self.total_footprint)

    @property
    def lib_refs_pct(self) -> float:
        return _pct(self.lib_references, self.total_references)

    @property
    def lib_accesses_pct(self) -> float:
        return _pct(self.lib_accesses, self.total_accesses)

    @property
    def lib_footprint_pct(self) -> float:
        return _pct(self.lib_footprint, self.total_footprint)

    @property
    def other_accesses_pct(self) -> float:
        return max(0.0, 100.0 - self.model_accesses_pct - self.lib_accesses_pct)

    @property
    def other_footprint_pct(self) -> float:
        # Footprint categories can overlap (the same address touched by
        # both a model reference and other code), as in the paper.
        return max(0.0, 100.0 - self.model_footprint_pct)


def table3_behavior(name: str, model: ForayModel) -> MemoryBehavior:
    stats = model.trace_stats
    assert isinstance(stats, TraceStats)
    return MemoryBehavior(
        name=name,
        total_references=stats.total_references,
        total_accesses=stats.total_accesses,
        total_footprint=stats.total_footprint,
        model_references=len(model.references),
        model_accesses=model.captured_accesses,
        model_footprint=model.captured_footprint,
        lib_references=len(stats.lib_refs),
        lib_accesses=stats.lib_accesses,
        lib_footprint=len(stats.lib_addresses),
    )
