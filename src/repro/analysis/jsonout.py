"""Machine-readable report payloads for the CLI's ``--json`` mode.

Downstream tooling used to scrape the human tables off stdout; these
builders expose the same numbers as plain dicts of JSON-safe scalars
(no ``Infinity``/``NaN`` — non-finite ratios become ``None``, so the
output survives strict parsers). The human tables remain the default;
``--json`` swaps stdout wholesale, leaving the stderr cache counters
untouched.
"""

from __future__ import annotations

import math

from repro.analysis.census import LoopCensus
from repro.analysis.coverage import ForayFormCoverage, MemoryBehavior
from repro.cachesim.report import HierarchyReport
from repro.foray.validate import WorkloadValidation
from repro.spm.explore import ExplorationPoint


def _finite(value: float) -> float | None:
    """JSON-safe number: strict JSON has no Infinity/NaN literals."""
    return value if math.isfinite(value) else None


def census_row(row: LoopCensus) -> dict:
    return {
        "benchmark": row.name,
        "lines": row.lines,
        "loops": row.total_loops,
        "for_loops": row.for_loops,
        "while_loops": row.while_loops,
        "do_loops": row.do_loops,
        "for_pct": row.for_pct,
        "while_pct": row.while_pct,
        "do_pct": row.do_pct,
    }


def coverage_row(row: ForayFormCoverage) -> dict:
    return {
        "benchmark": row.name,
        "loops_in_model": row.loops_in_model,
        "refs_in_model": row.refs_in_model,
        "loops_in_source_form": row.loops_in_source_form,
        "refs_in_source_form": row.refs_in_source_form,
        "loops_not_in_source_form_pct": row.loops_not_in_source_form_pct,
        "refs_not_in_source_form_pct": row.refs_not_in_source_form_pct,
        "improvement_ratio": _finite(row.improvement_ratio),
    }


def behavior_row(row: MemoryBehavior) -> dict:
    return {
        "benchmark": row.name,
        "total_references": row.total_references,
        "total_accesses": row.total_accesses,
        "total_footprint": row.total_footprint,
        "model_refs_pct": row.model_refs_pct,
        "model_accesses_pct": row.model_accesses_pct,
        "model_footprint_pct": row.model_footprint_pct,
        "lib_refs_pct": row.lib_refs_pct,
        "lib_accesses_pct": row.lib_accesses_pct,
        "lib_footprint_pct": row.lib_footprint_pct,
    }


def exploration_row(point: ExplorationPoint) -> dict:
    return {
        "capacity_bytes": point.capacity_bytes,
        "buffer_count": point.buffer_count,
        "used_bytes": point.used_bytes,
        "benefit_nj": point.benefit_nj,
        "baseline_nj": point.baseline_nj,
        "saving_fraction": point.saving_fraction,
        "policy": point.policy,
    }


def validation_row(result: WorkloadValidation, threshold: float) -> dict:
    worst = result.worst_reference()
    return {
        "benchmark": result.workload,
        "profile": result.profile,
        "scenario_count": result.scenario_count,
        "self_full_accuracy": result.self_validation.full_accuracy,
        "self_overall_accuracy": result.self_validation.overall_accuracy,
        "min_accuracy": result.min_accuracy,
        "mean_accuracy": result.mean_accuracy,
        "max_unexercised": result.max_unexercised,
        "passes": result.passes(threshold),
        "worst_reference": None if worst is None else {
            "scenario": worst[0],
            "array": worst[1].reference.array_name,
            "accuracy": worst[1].accuracy,
        },
        "cross": [
            {
                "scenario": cell.scenario,
                "overall_accuracy": cell.report.overall_accuracy,
                "checked": cell.report.total_checked,
                "predicted": cell.report.total_predicted,
                "unexercised": cell.report.unexercised,
            }
            for cell in result.cross
        ],
    }


def hier_row(report: HierarchyReport) -> dict:
    cells = {}
    for label, result in (("cache", report.cache), ("hybrid", report.hybrid)):
        cells[label] = {
            "reads": result.reads,
            "writes": result.writes,
            "spm_reads": result.spm_reads,
            "spm_writes": result.spm_writes,
            "main_read_words": result.main_read_words,
            "main_write_words": result.main_write_words,
            "levels": [
                {
                    "reads": stats.reads,
                    "writes": stats.writes,
                    "read_misses": stats.read_misses,
                    "write_misses": stats.write_misses,
                    "evictions": stats.evictions,
                    "fills": stats.fills,
                    "writebacks": stats.writebacks,
                    "through_write_words": stats.through_write_words,
                    "miss_rate": stats.miss_rate,
                }
                for stats in result.levels
            ],
        }
    return {
        "benchmark": report.workload,
        "scenario": report.scenario,
        "cache_config": report.cache_config.spec(),
        "spm_bytes": report.spm_bytes,
        "policy": report.policy,
        "spm_buffer_bytes": report.spm_buffer_bytes,
        "baseline_main_nj": report.baseline_main_nj,
        "cache_nj": report.cache_nj,
        "hybrid_nj": report.hybrid_nj,
        "hybrid_cache_nj": report.hybrid_cache_nj,
        "spm_access_nj": report.spm_access_nj,
        "spm_transfer_nj": report.spm_transfer_nj,
        "hybrid_saving_fraction": report.hybrid_saving_fraction,
        "spm_win": report.spm_win,
        **cells,
    }


def suite_payload(
    reports,
    sweeps: dict | None = None,
    validations: list[WorkloadValidation] | None = None,
    hierarchy: list[HierarchyReport] | None = None,
    threshold: float = 0.0,
) -> dict:
    payload = {
        "command": "suite",
        "table1": [census_row(r.census) for r in reports],
        "table2": [coverage_row(r.table2) for r in reports],
        "table3": [behavior_row(r.table3) for r in reports],
    }
    if sweeps is not None:
        payload["spm_sweep"] = {
            name: [exploration_row(point) for point in points]
            for name, points in sweeps.items()
        }
    if validations is not None:
        payload["validation"] = [
            validation_row(result, threshold) for result in validations
        ]
        payload["validation_passes"] = all(
            result.passes(threshold) for result in validations
        )
    if hierarchy is not None:
        payload["hierarchy"] = [hier_row(report) for report in hierarchy]
    return payload


def validate_payload(
    results: list[WorkloadValidation], threshold: float
) -> dict:
    return {
        "command": "validate",
        "threshold": threshold,
        "workloads": [validation_row(r, threshold) for r in results],
        "passes": all(r.passes(threshold) for r in results),
    }


def static_row(report) -> dict:
    """One (workload, scenario) cell of the static-analysis matrix
    (a :class:`repro.pipeline.StaticReport`)."""
    oracle = report.oracle
    static = report.static
    return {
        "benchmark": report.name,
        "scenario": report.scenario,
        "dynamic_refs": oracle.dynamic_total,
        "matched_refs": oracle.matched,
        "coverage": oracle.coverage,
        "analyzable_refs": oracle.analyzable_total,
        "foray_gap": len(oracle.foray_gap),
        "refused": static.refused_count,
        "refusals": dict(static.refusal_histogram),
        "model_complete": static.model_complete,
        "stats_exact": static.stats_exact,
        "fast_path_ok": static.fast_path_ok,
        "ok": oracle.ok,
        "diff": oracle.diff_lines(),
    }


def static_payload(reports) -> dict:
    return {
        "command": "static",
        "workloads": [static_row(report) for report in reports],
        "ok": all(report.ok for report in reports),
    }


def lint_finding(finding) -> dict:
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "message": finding.message,
        "line": finding.line,
        "column": finding.column,
        "function": finding.function,
    }


def lint_payload(reports) -> dict:
    return {
        "command": "lint",
        "sources": [
            {
                "source": report.label,
                "workload": report.workload,
                "scenario": report.scenario,
                "errors": report.error_count,
                "warnings": report.warning_count,
                "findings": [lint_finding(f) for f in report.findings],
            }
            for report in reports
        ],
        "errors": sum(report.error_count for report in reports),
        "warnings": sum(report.warning_count for report in reports),
        "ok": all(report.error_count == 0 for report in reports),
    }


def hier_payload(results: list[HierarchyReport]) -> dict:
    return {
        "command": "hier",
        "cells": [hier_row(report) for report in results],
    }


def fuzz_outcome_row(outcome) -> dict:
    """One generated program's check battery
    (a :class:`repro.gen.fuzz.ProgramOutcome`)."""
    return {
        "spec": outcome.spec,
        "profile": outcome.profile,
        "seed": outcome.seed,
        "status": outcome.status,
        "source_lines": outcome.source_lines,
        "transfer_accuracy": (
            None if outcome.transfer_accuracy is None
            else _finite(outcome.transfer_accuracy)),
        "cached": outcome.cached,
        "checks": [
            {"name": check.name, "status": check.status,
             "detail": check.detail}
            for check in outcome.checks
        ],
        "failing_check": outcome.failing_check or None,
        "shrunk_lines": outcome.shrunk_lines if outcome.shrunk_source
        else None,
        "shrunk_source": outcome.shrunk_source or None,
        "error": outcome.error or None,
    }


def gen_payload(report) -> dict:
    """One population fuzzing run (a :class:`repro.gen.fuzz.FuzzReport`).

    Failing programs carry their minimized source inline, but the seed
    plus profile alone replays them — generation, rendering and the
    shrink walk are all deterministic.
    """
    transfer = report.transfer_stats()
    return {
        "command": "gen",
        "profile": report.profile,
        "checks": list(report.checks),
        "total": report.total,
        "passed": report.total - len(report.failures) - len(report.errors),
        "failed": len(report.failures),
        "errored": len(report.errors),
        "ok": report.ok,
        "check_counts": report.check_counts(),
        "transfer": None if transfer is None else {
            "measured": transfer[0],
            "min_accuracy": _finite(transfer[1]),
            "mean_accuracy": _finite(transfer[2]),
        },
        "programs": [fuzz_outcome_row(o) for o in report.outcomes],
    }
