"""The paper's published numbers (Tables I–III), for side-by-side reports.

Our workloads are scaled-down synthetic counterparts of MiBench (see
DESIGN.md), so absolute counts differ by construction; the comparisons in
EXPERIMENTS.md are about *shape*: loop-kind mixes, which benchmarks are
fully FORAY-form already (fft), which are entirely opaque to static
analysis (adpcm), and the rough magnitude of coverage percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

BENCHMARK_NAMES = ("jpeg", "lame", "susan", "fft", "gsm", "adpcm")


@dataclass(frozen=True)
class PaperTable1Row:
    lines: int
    total_loops: int
    for_pct: float
    while_pct: float
    do_pct: float


PAPER_TABLE1: dict[str, PaperTable1Row] = {
    "jpeg": PaperTable1Row(34590, 169, 65, 34, 1),
    "lame": PaperTable1Row(22846, 479, 83, 8, 9),
    "susan": PaperTable1Row(2173, 14, 79, 21, 0),
    "fft": PaperTable1Row(493, 11, 100, 0, 0),
    "gsm": PaperTable1Row(7089, 38, 87, 13, 0),
    "adpcm": PaperTable1Row(782, 2, 50, 50, 0),
}


@dataclass(frozen=True)
class PaperTable2Row:
    loops_in_model: int
    refs_in_model: int
    loops_not_in_form_pct: float
    refs_not_in_form_pct: float


PAPER_TABLE2: dict[str, PaperTable2Row] = {
    "jpeg": PaperTable2Row(73, 73, 41, 38),
    "lame": PaperTable2Row(232, 980, 42, 38),
    "susan": PaperTable2Row(9, 10, 78, 50),
    "fft": PaperTable2Row(8, 19, 0, 0),
    "gsm": PaperTable2Row(17, 86, 59, 74),
    "adpcm": PaperTable2Row(2, 1, 100, 100),
}


@dataclass(frozen=True)
class PaperTable3Row:
    references: int
    accesses_m: float  # millions
    footprint: int
    model_refs_pct: float
    model_accesses_pct: float
    model_footprint_pct: float
    lib_refs_pct: float
    lib_accesses_pct: float
    lib_footprint_pct: float


PAPER_TABLE3: dict[str, PaperTable3Row] = {
    "jpeg": PaperTable3Row(6151, 8.3, 123625, 1, 27, 87, 33, 2, 9),
    "lame": PaperTable3Row(16805, 43.0, 127052, 6, 22, 26, 40, 20, 33),
    "susan": PaperTable3Row(1162, 5.0, 24778, 1, 66, 72, 85, 1, 47),
    "fft": PaperTable3Row(2420, 22.0, 28804, 1, 1, 57, 95, 96, 43),
    "gsm": PaperTable3Row(2091, 37.0, 16215, 4, 32, 5, 49, 3, 93),
    "adpcm": PaperTable3Row(546, 5.5, 4964, 0.2, 28, 20, 97, 0.2, 68),
}

#: The paper's headline: FORAY-GEN doubles analyzable references on average.
PAPER_HEADLINE_IMPROVEMENT = 2.0
#: "23% of loops on average are not for loops" (Section 5.1).
PAPER_NON_FOR_LOOP_PCT = 23.0
#: Averages quoted for Table II (Section 5.1).
PAPER_AVG_LOOPS_NOT_IN_FORM_PCT = 64.0
PAPER_AVG_REFS_NOT_IN_FORM_PCT = 60.0
#: Averages quoted for Table III (Section 5.2).
PAPER_AVG_MODEL_ACCESSES_PCT = 29.0
PAPER_AVG_MODEL_FOOTPRINT_PCT = 44.0
PAPER_AVG_MODEL_REFS_PCT = 2.2
