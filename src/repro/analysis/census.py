"""Benchmark complexity census — the data behind the paper's Table I.

Counts source lines and *executed* loops (the paper excludes loops never
reached during profiling) broken down by loop kind.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LoopCensus:
    """One row of Table I."""

    name: str
    lines: int
    total_loops: int
    for_loops: int
    while_loops: int
    do_loops: int

    @property
    def for_pct(self) -> float:
        return 100.0 * self.for_loops / self.total_loops if self.total_loops else 0.0

    @property
    def while_pct(self) -> float:
        return 100.0 * self.while_loops / self.total_loops if self.total_loops else 0.0

    @property
    def do_pct(self) -> float:
        return 100.0 * self.do_loops / self.total_loops if self.total_loops else 0.0

    @property
    def non_for_pct(self) -> float:
        """The paper's observation: 23% of loops on average are not for."""
        return 100.0 - self.for_pct if self.total_loops else 0.0


def count_lines(source: str) -> int:
    """Non-blank source lines (a simple LoC measure)."""
    return sum(1 for line in source.splitlines() if line.strip())


def loop_census(name: str, source: str, executed_loops: dict[int, str]) -> LoopCensus:
    """Build a Table-I row from a run's executed-loop map.

    ``executed_loops`` maps AST loop node_ids to their kind, as returned by
    :meth:`repro.foray.extractor.ForayExtractor.executed_loops`.
    """
    kinds = list(executed_loops.values())
    return LoopCensus(
        name=name,
        lines=count_lines(source),
        total_loops=len(kinds),
        for_loops=sum(1 for kind in kinds if kind == "for"),
        while_loops=sum(1 for kind in kinds if kind == "while"),
        do_loops=sum(1 for kind in kinds if kind == "do"),
    )
