"""Checkpoint instrumentation — step 1 of the paper's Algorithm 1.

Every loop statement (``for``, ``while``, ``do``) is annotated with three
checkpoints:

* *loop-begin*, executed once just before the loop statement;
* *body-begin*, executed at the top of every iteration;
* *body-end*, executed whenever the body is exited — normally, via
  ``break``/``continue``, or by a ``return`` unwinding through the loop.
  A naive source-level ``CHECKPOINT();`` as the last body statement would
  be skipped by abnormal exits and leave the checkpoint stream
  ill-nested, confusing Algorithm 2's stack discipline; placing it in a
  cleanup position (as a production annotator would, e.g. on every edge
  leaving the body) keeps reconstruction exact. The paper's examples
  never exercise abnormal exits, so both placements agree on them.

Rather than splicing new statement nodes into the AST, the pass stores the
three ids directly on each loop node (``begin_id`` / ``body_begin_id`` /
``body_end_id``); the interpreter emits the checkpoint records at the
corresponding points and the pretty-printer renders paper-style
``CHECKPOINT(n);`` markers — semantically identical to the paper's
source-to-source annotation, and robust against re-parsing.

The pass also produces the :class:`~repro.sim.trace.CheckpointMap` that the
trace reader and Algorithm 2 use to recover checkpoint kinds and loop
metadata from the id-only text trace. Each :class:`CheckpointInfo` carries
the precomputed compact ``kind_code`` used by the batched trace protocol,
so the engines and the extractor never translate enum kinds on the hot
path.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.sim.trace import CheckpointInfo, CheckpointKind, CheckpointMap

#: First checkpoint id handed out (mirrors the small ids of paper Figure 4).
FIRST_CHECKPOINT_ID = 10


class CheckpointAnnotator:
    """Assigns checkpoint ids to every loop of a program, in pre-order."""

    def __init__(self, first_id: int = FIRST_CHECKPOINT_ID):
        self._next_id = first_id
        self.checkpoint_map = CheckpointMap()

    def annotate(self, program: ast.Program) -> CheckpointMap:
        for node in ast.walk(program):
            if isinstance(node, ast.Loop):
                self._annotate_loop(node)
        return self.checkpoint_map

    def _annotate_loop(self, loop: ast.Loop) -> None:
        if loop.is_instrumented:
            raise ValueError("loop is already instrumented")
        loop.begin_id = self._take_id()
        loop.body_begin_id = self._take_id()
        loop.body_end_id = self._take_id()
        for checkpoint_id, kind in (
            (loop.begin_id, CheckpointKind.LOOP_BEGIN),
            (loop.body_begin_id, CheckpointKind.BODY_BEGIN),
            (loop.body_end_id, CheckpointKind.BODY_END),
        ):
            self.checkpoint_map.add(
                CheckpointInfo(checkpoint_id, kind, loop.node_id, loop.kind)
            )

    def _take_id(self) -> int:
        checkpoint_id = self._next_id
        self._next_id += 1
        return checkpoint_id


def instrument(program: ast.Program) -> CheckpointMap:
    """Annotate all loops of an analyzed program, in place.

    Returns the checkpoint map describing every inserted checkpoint.
    The program must already have ``node_id`` assigned (run
    :func:`repro.lang.semantics.analyze` first).
    """
    return CheckpointAnnotator().annotate(program)
