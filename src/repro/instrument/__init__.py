"""Source instrumentation passes (step 1 of the paper's Algorithm 1)."""

from repro.instrument.checkpoints import CheckpointAnnotator, instrument

__all__ = ["CheckpointAnnotator", "instrument"]
